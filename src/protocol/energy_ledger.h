// energy_ledger.h — per-session energy accounting on the tag.
//
// §4 lists three levers for protocol energy: computation on the device,
// communication, and wasted work on failed sessions. The ledger counts
// the primitive operations and the bits a session costs on the tag side;
// the cost model below turns counts into joules using the calibrated
// co-processor numbers (5.1 µJ per ECPM), MCU cycle estimates for the
// software operations, and the hw::RadioModel for the air interface.
#pragma once

#include <cstddef>

#include "hw/radio.h"
#include "hw/technology.h"

namespace medsec::protocol {

/// Operation counts accumulated over one protocol session (tag side).
struct EnergyLedger {
  std::size_t ecpm = 0;            ///< elliptic-curve point mults
  std::size_t modmul = 0;          ///< 163-bit modular multiplications (SW)
  std::size_t modadd = 0;          ///< modular additions (SW)
  std::size_t cipher_blocks = 0;   ///< block-cipher invocations
  std::size_t hash_blocks = 0;     ///< hash compression calls
  std::size_t rng_bits = 0;        ///< TRNG/DRBG bits consumed
  std::size_t tx_bits = 0;
  std::size_t rx_bits = 0;
  /// True if the session ended early (e.g. server authentication failed
  /// before the tag spent its heavy computation — §4's third lever).
  bool aborted_early = false;

  EnergyLedger& operator+=(const EnergyLedger& o) {
    ecpm += o.ecpm;
    modmul += o.modmul;
    modadd += o.modadd;
    cipher_blocks += o.cipher_blocks;
    hash_blocks += o.hash_blocks;
    rng_bits += o.rng_bits;
    tx_bits += o.tx_bits;
    rx_bits += o.rx_bits;
    return *this;
  }
};

/// Joule costs of the countable operations on the tag.
struct TagCostModel {
  /// Calibrated co-processor figure (§6: 5.1 µJ per point mult).
  double ecpm_j = 5.1e-6;
  /// 163-bit modular multiplication in MCU software: ~8k cycles on an
  /// 8/16-bit class core at ~15 pJ/cycle (0.13 µm MCU at 1 V).
  double modmul_j = 0.12e-6;
  double modadd_j = 0.004e-6;
  /// One block of a serialized lightweight cipher (PRESENT-class:
  /// ~550 cycles x ~2.5 kGE active).
  double cipher_block_j = 0.018e-6;
  /// One hash compression (SHA-1-class serialized: ~1k cycles x 5.5 kGE).
  double hash_block_j = 0.10e-6;
  double rng_bit_j = 0.0005e-6;

  double compute_energy_j(const EnergyLedger& l) const {
    return static_cast<double>(l.ecpm) * ecpm_j +
           static_cast<double>(l.modmul) * modmul_j +
           static_cast<double>(l.modadd) * modadd_j +
           static_cast<double>(l.cipher_blocks) * cipher_block_j +
           static_cast<double>(l.hash_blocks) * hash_block_j +
           static_cast<double>(l.rng_bits) * rng_bit_j;
  }

  double radio_energy_j(const EnergyLedger& l, const hw::RadioModel& radio,
                        double distance_m) const {
    return radio.tx_energy_j(l.tx_bits, distance_m) +
           radio.rx_energy_j(l.rx_bits);
  }

  /// Total session energy on the tag at a given link distance.
  double session_energy_j(const EnergyLedger& l, const hw::RadioModel& radio,
                          double distance_m) const {
    return compute_energy_j(l) + radio_energy_j(l, radio, distance_m);
  }
};

}  // namespace medsec::protocol
