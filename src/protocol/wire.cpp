#include "protocol/wire.h"

#include <stdexcept>

namespace medsec::protocol {

namespace {
using bigint::U192;
using ecc::Curve;
using ecc::Fe;
using ecc::Point;
using ecc::Scalar;
}  // namespace

std::vector<std::uint8_t> encode_fe(const Fe& v) {
  const U192 bits = v.to_bits();
  std::vector<std::uint8_t> out(kFeBytes);
  for (std::size_t i = 0; i < kFeBytes; ++i) {
    const std::size_t byte_index = kFeBytes - 1 - i;  // big-endian
    out[byte_index] =
        static_cast<std::uint8_t>(bits.limb(i / 8) >> (8 * (i % 8)));
  }
  return out;
}

Fe decode_fe(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != kFeBytes)
    throw std::invalid_argument("decode_fe: bad length");
  U192 bits;
  for (std::size_t i = 0; i < kFeBytes; ++i) {
    const std::size_t byte_index = kFeBytes - 1 - i;
    bits.set_limb(i / 8, bits.limb(i / 8) |
                             (static_cast<std::uint64_t>(bytes[byte_index])
                              << (8 * (i % 8))));
  }
  // Bits above 162 must be clear in a valid encoding.
  for (std::size_t b = 163; b < 168; ++b)
    if (bits.bit(b)) throw std::invalid_argument("decode_fe: stray high bits");
  return Fe::from_bits(bits);
}

std::vector<std::uint8_t> encode_scalar(const Scalar& v) {
  std::vector<std::uint8_t> out(kFeBytes);
  for (std::size_t i = 0; i < kFeBytes; ++i) {
    const std::size_t byte_index = kFeBytes - 1 - i;
    out[byte_index] =
        static_cast<std::uint8_t>(v.limb(i / 8) >> (8 * (i % 8)));
  }
  return out;
}

Scalar decode_scalar(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != kFeBytes)
    throw std::invalid_argument("decode_scalar: bad length");
  Scalar v;
  for (std::size_t i = 0; i < kFeBytes; ++i) {
    const std::size_t byte_index = kFeBytes - 1 - i;
    v.set_limb(i / 8, v.limb(i / 8) |
                          (static_cast<std::uint64_t>(bytes[byte_index])
                           << (8 * (i % 8))));
  }
  return v;
}

std::vector<std::uint8_t> encode_point(const Curve& curve, const Point& p) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + kFeBytes);
  if (p.infinity) {
    out.assign(1 + kFeBytes, 0x00);
    return out;
  }
  const auto c = curve.compress(p);
  out.push_back(static_cast<std::uint8_t>(0x02 | c.y_bit));
  const auto xb = encode_fe(c.x);
  out.insert(out.end(), xb.begin(), xb.end());
  return out;
}

std::optional<Point> decode_point(const Curve& curve,
                                  const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 1 + kFeBytes) return std::nullopt;
  if (bytes[0] == 0x00) return std::nullopt;  // infinity is never a valid
                                              // protocol point
  if (bytes[0] != 0x02 && bytes[0] != 0x03) return std::nullopt;
  Fe x;
  try {
    x = decode_fe({bytes.begin() + 1, bytes.end()});
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  const auto p = curve.decompress({x, bytes[0] & 1});
  if (!p) return std::nullopt;
  if (!curve.validate_subgroup_point(*p)) return std::nullopt;
  return p;
}

Scalar fe_to_scalar_mod_order(const Curve& curve, const Fe& v) {
  return curve.scalar_ring().reduce(v.to_bits());
}

}  // namespace medsec::protocol
