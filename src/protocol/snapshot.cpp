#include "protocol/snapshot.h"

#include <bit>

#include "protocol/energy_ledger.h"

namespace medsec::protocol {

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

void SnapshotWriter::fe(const ecc::Fe& v) {
  const bigint::U192 bits = v.to_bits();
  for (std::size_t i = 0; i < bigint::U192::kLimbs; ++i) u64(bits.limb(i));
}

ecc::Fe SnapshotReader::fe() {
  bigint::U192 bits;
  for (std::size_t i = 0; i < bigint::U192::kLimbs; ++i)
    bits.set_limb(i, u64());
  // A field element image has no bits above 162; anything else is a
  // corrupt snapshot, not a value to silently reduce.
  for (std::size_t b = 163; b < bigint::U192::kBits; ++b)
    if (bits.bit(b)) throw SnapshotError("field element out of range");
  return ecc::Fe::from_bits(bits);
}

void SnapshotWriter::point(const ecc::Point& p) {
  boolean(p.infinity);
  if (!p.infinity) {
    fe(p.x);
    fe(p.y);
  }
}

ecc::Point SnapshotReader::point() {
  if (boolean()) return ecc::Point::at_infinity();
  const ecc::Fe x = fe();
  const ecc::Fe y = fe();
  return ecc::Point::affine(x, y);
}

void SnapshotWriter::ledger(const EnergyLedger& l) {
  u64(l.ecpm);
  u64(l.modmul);
  u64(l.modadd);
  u64(l.cipher_blocks);
  u64(l.hash_blocks);
  u64(l.rng_bits);
  u64(l.tx_bits);
  u64(l.rx_bits);
  boolean(l.aborted_early);
}

void SnapshotReader::ledger(EnergyLedger& l) {
  l.ecpm = u64();
  l.modmul = u64();
  l.modadd = u64();
  l.cipher_blocks = u64();
  l.hash_blocks = u64();
  l.rng_bits = u64();
  l.tx_bits = u64();
  l.rx_bits = u64();
  l.aborted_early = boolean();
}

}  // namespace medsec::protocol
