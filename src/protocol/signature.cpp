#include "protocol/signature.h"

#include "ecc/fixed_base.h"
#include "ecc/scalar_mult.h"
#include "hash/sha256.h"
#include "protocol/wire.h"

namespace medsec::protocol {

namespace {

using ecc::Curve;
using ecc::Point;
using ecc::Scalar;

/// e = H(xcoord(R) || m) reduced into the scalar ring. Non-zero is
/// enforced by rejection (astronomically rare; loops by re-hashing with a
/// counter byte so signing stays deterministic given r).
Scalar challenge_scalar(const Curve& curve, const ecc::Fe& rx,
                        std::span<const std::uint8_t> message,
                        EnergyLedger* ledger) {
  const auto rx_bytes = encode_fe(rx);
  std::uint8_t counter = 0;
  for (;;) {
    hash::Sha256 h;
    h.update(rx_bytes);
    h.update(message);
    h.update({&counter, 1});
    const auto d = h.finish();
    if (ledger)
      ledger->hash_blocks += (rx_bytes.size() + message.size() + 1 + 63) / 64;
    // Take 168 bits little-endian from the digest, reduce mod l.
    Scalar e;
    for (std::size_t i = 0; i < 21; ++i)
      e.set_limb(i / 8,
                 e.limb(i / 8) |
                     (static_cast<std::uint64_t>(d[i]) << (8 * (i % 8))));
    e = curve.scalar_ring().reduce(e);
    if (!e.is_zero()) return e;
    ++counter;
  }
}

}  // namespace

SignatureKeyPair signature_keygen(const Curve& curve,
                                  rng::RandomSource& rng) {
  SignatureKeyPair kp;
  kp.x = rng.uniform_nonzero(curve.order());
  kp.X = ecc::generator_comb(curve).mult_ct(kp.x);
  return kp;
}

Signature ec_schnorr_sign(const Curve& curve, const SignatureKeyPair& key,
                          std::span<const std::uint8_t> message,
                          rng::RandomSource& rng, EnergyLedger* ledger) {
  const auto& ring = curve.scalar_ring();
  for (;;) {
    const Scalar r = rng.uniform_nonzero(curve.order());
    if (ledger) ledger->rng_bits += 163;
    // Generator multiplication: fixed-base comb, constant schedule.
    const Point R = ecc::generator_comb(curve).mult_ct(r);
    if (ledger) ++ledger->ecpm;
    if (R.infinity) continue;  // r = 0 mod l, impossible by construction

    const Scalar e = challenge_scalar(curve, R.x, message, ledger);
    const Scalar s = ring.add(r, ring.mul(e, key.x));
    if (ledger) {
      ++ledger->modmul;
      ++ledger->modadd;
    }
    if (s.is_zero()) continue;  // degenerate, re-randomize
    return Signature{e, s};
  }
}

bool ec_schnorr_verify(const Curve& curve, const Point& X,
                       std::span<const std::uint8_t> message,
                       const Signature& sig) {
  if (sig.e.is_zero() || sig.s.is_zero()) return false;
  if (sig.e >= curve.order() || sig.s >= curve.order()) return false;
  if (!curve.validate_subgroup_point(X)) return false;
  // R' = s*P - e*X.
  const Point sp = ecc::generator_comb(curve).mult(sig.s);
  const Point ex = ecc::scalar_mult_ld(curve, sig.e, X);
  const Point r = curve.add(sp, curve.negate(ex));
  if (r.infinity) return false;
  return challenge_scalar(curve, r.x, message, nullptr) == sig.e;
}

}  // namespace medsec::protocol
