// trng_model.h — model of a physical entropy source plus the on-line health
// tests a fielded medical device would run on it.
//
// The paper lists RNGs and PUFs among the primitives a secure protocol
// stack needs (§4). A real TRNG on a 0.13 µm chip is a ring-oscillator or
// metastability source with bias and serial correlation; we model exactly
// those two defects so the health-test and conditioning code paths are
// exercised realistically:
//
//   P(bit=1) = bias;  P(bit_i == bit_{i-1}) raised by correlation.
//
// Health tests follow NIST SP 800-90B §4.4: the Repetition Count Test and
// the Adaptive Proportion Test, both parameterized by the claimed
// min-entropy per bit.
//
// The fault-adversary extension (the hw/ fault campaign's RNG chapter):
// the model can be driven into the two classic TRNG failure modes — a
// stuck-at output (glitched or shorted oscillator) and entropy starvation
// (noise amplitude collapse; the output becomes almost perfectly serially
// correlated). Both are exactly what the repetition-count test exists to
// catch, and HealthGatedTrng / GatedTrngSource enforce the consequence:
// a DRBG is never keyed, and the hardened ladder never draws blinds, from
// a source whose health test has tripped.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "rng/hmac_drbg.h"
#include "rng/random_source.h"
#include "rng/xoshiro.h"

namespace medsec::rng {

/// Physical failure modes a fielded entropy source can enter.
enum class TrngFault : std::uint8_t {
  kNone = 0,
  kStuckAt = 1,   ///< output pinned at `stuck_value` (shorted oscillator)
  kStarved = 2,   ///< noise collapse: near-total serial correlation
};

/// A biased, serially-correlated one-bit-at-a-time entropy source model.
class TrngModel {
 public:
  struct Params {
    double bias = 0.5;         ///< P(bit = 1) ignoring correlation.
    double correlation = 0.0;  ///< in [0,1): extra P(repeat previous bit).
    std::uint64_t seed = 1;
    TrngFault fault = TrngFault::kNone;
    int stuck_value = 1;       ///< the pinned bit under kStuckAt
    /// Effective correlation floor under kStarved: long identical runs,
    /// exactly the signature the repetition-count test cuts off.
    double starved_correlation = 0.999;
  };

  explicit TrngModel(const Params& p) : params_(p), prng_(p.seed) {}

  /// Inject / clear a fault mid-stream (the campaign's glitch hook).
  void set_fault(TrngFault fault) { params_.fault = fault; }
  TrngFault fault() const { return params_.fault; }

  int next_bit() {
    if (params_.fault == TrngFault::kStuckAt) {
      prev_ = params_.stuck_value;
      have_prev_ = true;
      return params_.stuck_value;
    }
    double p1 = params_.bias;
    if (have_prev_) {
      // Mix toward repeating the previous bit.
      double repeat = params_.correlation;
      if (params_.fault == TrngFault::kStarved)
        repeat = std::max(repeat, params_.starved_correlation);
      p1 = repeat * static_cast<double>(prev_) + (1.0 - repeat) * params_.bias;
    }
    const int bit = prng_.next_unit() < p1 ? 1 : 0;
    prev_ = bit;
    have_prev_ = true;
    return bit;
  }

  std::uint8_t next_byte() {
    std::uint8_t b = 0;
    for (int i = 0; i < 8; ++i) b = static_cast<std::uint8_t>((b << 1) | next_bit());
    return b;
  }

  /// Ideal min-entropy per bit of this source ignoring correlation:
  /// -log2(max(p, 1-p)).
  double nominal_min_entropy() const {
    const double p = std::max(params_.bias, 1.0 - params_.bias);
    return -std::log2(p);
  }

 private:
  Params params_;
  Xoshiro256 prng_;
  int prev_ = 0;
  bool have_prev_ = false;
};

/// NIST SP 800-90B §4.4.1 Repetition Count Test.
/// Fails (returns false from feed()) when a value repeats C or more times,
/// with C = 1 + ceil(20 / H) for a claimed min-entropy of H bits/sample and
/// a 2^-20 false-positive target.
class RepetitionCountTest {
 public:
  explicit RepetitionCountTest(double claimed_min_entropy_per_bit) {
    cutoff_ = 1 + static_cast<int>(
                      std::ceil(20.0 / claimed_min_entropy_per_bit));
  }

  /// Returns false on health-test failure.
  bool feed(int bit) {
    if (have_last_ && bit == last_) {
      ++run_;
    } else {
      run_ = 1;
      last_ = bit;
      have_last_ = true;
    }
    if (run_ >= cutoff_) {
      failed_ = true;
    }
    return !failed_;
  }

  bool failed() const { return failed_; }
  int cutoff() const { return cutoff_; }

 private:
  int cutoff_;
  int last_ = 0;
  int run_ = 0;
  bool have_last_ = false;
  bool failed_ = false;
};

/// NIST SP 800-90B §4.4.2 Adaptive Proportion Test for binary sources:
/// window W = 1024; the count of the first sample value in the window must
/// stay below a cutoff derived from the claimed entropy (binomial tail at
/// 2^-20).
class AdaptiveProportionTest {
 public:
  explicit AdaptiveProportionTest(double claimed_min_entropy_per_bit,
                                  int window = 1024)
      : window_(window) {
    // Cutoff = smallest c with P[Binom(W, p) >= c] <= 2^-20, p = 2^-H.
    const double p = std::pow(2.0, -claimed_min_entropy_per_bit);
    cutoff_ = binomial_tail_cutoff(window_, p, std::pow(2.0, -20));
  }

  bool feed(int bit) {
    if (pos_ == 0) {
      reference_ = bit;
      count_ = 1;
    } else if (bit == reference_) {
      ++count_;
      if (count_ >= cutoff_) failed_ = true;
    }
    pos_ = (pos_ + 1) % window_;
    return !failed_;
  }

  bool failed() const { return failed_; }
  int cutoff() const { return cutoff_; }

  /// Exposed for tests: smallest c such that P[X >= c] <= alpha for
  /// X ~ Binomial(n, p), computed by direct summation in log space.
  static int binomial_tail_cutoff(int n, double p, double alpha) {
    // Walk the pmf from k = n down, accumulating the upper tail.
    std::vector<double> log_pmf(static_cast<std::size_t>(n) + 1);
    double log_choose = 0.0;  // log C(n, 0)
    for (int k = 0; k <= n; ++k) {
      if (k > 0)
        log_choose += std::log(static_cast<double>(n - k + 1)) -
                      std::log(static_cast<double>(k));
      log_pmf[static_cast<std::size_t>(k)] =
          log_choose + k * std::log(p) + (n - k) * std::log1p(-p);
    }
    double tail = 0.0;
    for (int c = n; c >= 0; --c) {
      tail += std::exp(log_pmf[static_cast<std::size_t>(c)]);
      if (tail > alpha) return c + 1;
    }
    return 0;
  }

 private:
  int window_;
  int cutoff_;
  int reference_ = 0;
  int count_ = 0;
  int pos_ = 0;
  bool failed_ = false;
};

/// Empirical entropy estimates over a bit sample.
struct EntropyEstimate {
  double shannon_per_bit;
  double min_entropy_per_bit;
  double ones_fraction;
};

inline EntropyEstimate estimate_entropy(const std::vector<int>& bits) {
  std::size_t ones = 0;
  for (int b : bits) ones += static_cast<std::size_t>(b != 0);
  const double p1 =
      bits.empty() ? 0.5
                   : static_cast<double>(ones) / static_cast<double>(bits.size());
  const double p0 = 1.0 - p1;
  auto plogp = [](double p) { return p <= 0.0 ? 0.0 : -p * std::log2(p); };
  return EntropyEstimate{
      .shannon_per_bit = plogp(p0) + plogp(p1),
      .min_entropy_per_bit = -std::log2(std::max(p0, p1)),
      .ones_fraction = p1,
  };
}

/// Von Neumann debiaser: consumes bit pairs, emits at most one bit each.
class VonNeumannDebiaser {
 public:
  /// Feed one raw bit; returns the debiased bit when a pair completes with
  /// differing values.
  std::optional<int> feed(int bit) {
    if (!pending_) {
      pending_ = bit + 1;  // store as 1/2 to distinguish from "none"
      return std::nullopt;
    }
    const int first = *pending_ - 1;
    pending_.reset();
    if (first == bit) return std::nullopt;
    return first;
  }

 private:
  std::optional<int> pending_;
};

/// A TRNG with the SP 800-90B repetition-count test wired in-line: every
/// harvested bit feeds the test, and the moment it trips, harvesting
/// stops reporting success — permanently (the test latches; a stuck or
/// starved source needs service, not a retry).
class HealthGatedTrng {
 public:
  explicit HealthGatedTrng(const TrngModel::Params& p,
                           double claimed_min_entropy_per_bit = 0.9)
      : trng_(p), rct_(claimed_min_entropy_per_bit) {}

  /// Fill `out` with health-tested entropy. Returns false as soon as the
  /// repetition-count test fails; the buffer contents are then unusable
  /// as seed material and the caller must refuse to proceed.
  bool harvest(std::span<std::uint8_t> out) {
    for (auto& byte : out) {
      std::uint8_t b = 0;
      for (int i = 0; i < 8; ++i) {
        const int bit = trng_.next_bit();
        if (!rct_.feed(bit)) return false;
        b = static_cast<std::uint8_t>((b << 1) | bit);
      }
      byte = b;
    }
    return true;
  }

  bool healthy() const { return !rct_.failed(); }
  TrngModel& source() { return trng_; }
  const RepetitionCountTest& health() const { return rct_; }

 private:
  TrngModel trng_;
  RepetitionCountTest rct_;
};

/// Key an HMAC-DRBG from health-tested TRNG output. Returns nullopt when
/// the health test tripped during harvest: the DRBG refuses to
/// instantiate from an entropy source known to be faulty, and without a
/// DRBG the device has no blind/scalar source — it refuses to operate
/// rather than degrade silently.
inline std::optional<HmacDrbg> seed_drbg_from_trng(
    HealthGatedTrng& trng, std::size_t seed_bytes = 48) {
  std::vector<std::uint8_t> seed(seed_bytes);
  if (!trng.harvest(seed)) return std::nullopt;
  return HmacDrbg(seed);
}

/// RandomSource facade over the health-gated pipeline: TRNG → repetition
/// count test → HMAC-DRBG, reseeding every `reseed_interval` draws. Once
/// the health test fails — at construction or at any reseed — every draw
/// throws std::runtime_error. This is the source the hardened ladder's
/// blind draws ride on: a plan_hardened_coproc_mult over a failed source
/// aborts before any key-dependent computation, instead of running the
/// "randomized" ladder with degenerate blinds.
class GatedTrngSource final : public RandomSource {
 public:
  explicit GatedTrngSource(const TrngModel::Params& p,
                           double claimed_min_entropy_per_bit = 0.9,
                           std::uint64_t reseed_interval = 1024)
      : trng_(p, claimed_min_entropy_per_bit),
        reseed_interval_(reseed_interval) {
    std::array<std::uint8_t, 48> seed{};
    if (trng_.harvest(seed)) drbg_.emplace(seed);
  }

  bool healthy() const { return drbg_.has_value() && trng_.healthy(); }

  std::uint64_t next_u64() override {
    check();
    return drbg_->next_u64();
  }
  void fill(std::span<std::uint8_t> out) override {
    check();
    drbg_->fill(out);
  }

 private:
  void check() {
    if (drbg_ && ++draws_ > reseed_interval_) {
      draws_ = 0;
      std::array<std::uint8_t, 32> entropy{};
      if (trng_.harvest(entropy))
        drbg_->reseed(entropy);
      else
        drbg_.reset();  // latched: no output past a failed reseed
    }
    if (!drbg_)
      throw std::runtime_error(
          "GatedTrngSource: entropy source failed its repetition-count "
          "health test; output refused");
  }

  HealthGatedTrng trng_;
  std::uint64_t reseed_interval_;
  std::uint64_t draws_ = 0;
  std::optional<HmacDrbg> drbg_;
};

}  // namespace medsec::rng
