// trng_model.h — model of a physical entropy source plus the on-line health
// tests a fielded medical device would run on it.
//
// The paper lists RNGs and PUFs among the primitives a secure protocol
// stack needs (§4). A real TRNG on a 0.13 µm chip is a ring-oscillator or
// metastability source with bias and serial correlation; we model exactly
// those two defects so the health-test and conditioning code paths are
// exercised realistically:
//
//   P(bit=1) = bias;  P(bit_i == bit_{i-1}) raised by correlation.
//
// Health tests follow NIST SP 800-90B §4.4: the Repetition Count Test and
// the Adaptive Proportion Test, both parameterized by the claimed
// min-entropy per bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "rng/xoshiro.h"

namespace medsec::rng {

/// A biased, serially-correlated one-bit-at-a-time entropy source model.
class TrngModel {
 public:
  struct Params {
    double bias = 0.5;         ///< P(bit = 1) ignoring correlation.
    double correlation = 0.0;  ///< in [0,1): extra P(repeat previous bit).
    std::uint64_t seed = 1;
  };

  explicit TrngModel(const Params& p) : params_(p), prng_(p.seed) {}

  int next_bit() {
    double p1 = params_.bias;
    if (have_prev_) {
      // Mix toward repeating the previous bit.
      const double repeat = params_.correlation;
      p1 = repeat * static_cast<double>(prev_) + (1.0 - repeat) * params_.bias;
    }
    const int bit = prng_.next_unit() < p1 ? 1 : 0;
    prev_ = bit;
    have_prev_ = true;
    return bit;
  }

  std::uint8_t next_byte() {
    std::uint8_t b = 0;
    for (int i = 0; i < 8; ++i) b = static_cast<std::uint8_t>((b << 1) | next_bit());
    return b;
  }

  /// Ideal min-entropy per bit of this source ignoring correlation:
  /// -log2(max(p, 1-p)).
  double nominal_min_entropy() const {
    const double p = std::max(params_.bias, 1.0 - params_.bias);
    return -std::log2(p);
  }

 private:
  Params params_;
  Xoshiro256 prng_;
  int prev_ = 0;
  bool have_prev_ = false;
};

/// NIST SP 800-90B §4.4.1 Repetition Count Test.
/// Fails (returns false from feed()) when a value repeats C or more times,
/// with C = 1 + ceil(20 / H) for a claimed min-entropy of H bits/sample and
/// a 2^-20 false-positive target.
class RepetitionCountTest {
 public:
  explicit RepetitionCountTest(double claimed_min_entropy_per_bit) {
    cutoff_ = 1 + static_cast<int>(
                      std::ceil(20.0 / claimed_min_entropy_per_bit));
  }

  /// Returns false on health-test failure.
  bool feed(int bit) {
    if (have_last_ && bit == last_) {
      ++run_;
    } else {
      run_ = 1;
      last_ = bit;
      have_last_ = true;
    }
    if (run_ >= cutoff_) {
      failed_ = true;
    }
    return !failed_;
  }

  bool failed() const { return failed_; }
  int cutoff() const { return cutoff_; }

 private:
  int cutoff_;
  int last_ = 0;
  int run_ = 0;
  bool have_last_ = false;
  bool failed_ = false;
};

/// NIST SP 800-90B §4.4.2 Adaptive Proportion Test for binary sources:
/// window W = 1024; the count of the first sample value in the window must
/// stay below a cutoff derived from the claimed entropy (binomial tail at
/// 2^-20).
class AdaptiveProportionTest {
 public:
  explicit AdaptiveProportionTest(double claimed_min_entropy_per_bit,
                                  int window = 1024)
      : window_(window) {
    // Cutoff = smallest c with P[Binom(W, p) >= c] <= 2^-20, p = 2^-H.
    const double p = std::pow(2.0, -claimed_min_entropy_per_bit);
    cutoff_ = binomial_tail_cutoff(window_, p, std::pow(2.0, -20));
  }

  bool feed(int bit) {
    if (pos_ == 0) {
      reference_ = bit;
      count_ = 1;
    } else if (bit == reference_) {
      ++count_;
      if (count_ >= cutoff_) failed_ = true;
    }
    pos_ = (pos_ + 1) % window_;
    return !failed_;
  }

  bool failed() const { return failed_; }
  int cutoff() const { return cutoff_; }

  /// Exposed for tests: smallest c such that P[X >= c] <= alpha for
  /// X ~ Binomial(n, p), computed by direct summation in log space.
  static int binomial_tail_cutoff(int n, double p, double alpha) {
    // Walk the pmf from k = n down, accumulating the upper tail.
    std::vector<double> log_pmf(static_cast<std::size_t>(n) + 1);
    double log_choose = 0.0;  // log C(n, 0)
    for (int k = 0; k <= n; ++k) {
      if (k > 0)
        log_choose += std::log(static_cast<double>(n - k + 1)) -
                      std::log(static_cast<double>(k));
      log_pmf[static_cast<std::size_t>(k)] =
          log_choose + k * std::log(p) + (n - k) * std::log1p(-p);
    }
    double tail = 0.0;
    for (int c = n; c >= 0; --c) {
      tail += std::exp(log_pmf[static_cast<std::size_t>(c)]);
      if (tail > alpha) return c + 1;
    }
    return 0;
  }

 private:
  int window_;
  int cutoff_;
  int reference_ = 0;
  int count_ = 0;
  int pos_ = 0;
  bool failed_ = false;
};

/// Empirical entropy estimates over a bit sample.
struct EntropyEstimate {
  double shannon_per_bit;
  double min_entropy_per_bit;
  double ones_fraction;
};

inline EntropyEstimate estimate_entropy(const std::vector<int>& bits) {
  std::size_t ones = 0;
  for (int b : bits) ones += static_cast<std::size_t>(b != 0);
  const double p1 =
      bits.empty() ? 0.5
                   : static_cast<double>(ones) / static_cast<double>(bits.size());
  const double p0 = 1.0 - p1;
  auto plogp = [](double p) { return p <= 0.0 ? 0.0 : -p * std::log2(p); };
  return EntropyEstimate{
      .shannon_per_bit = plogp(p0) + plogp(p1),
      .min_entropy_per_bit = -std::log2(std::max(p0, p1)),
      .ones_fraction = p1,
  };
}

/// Von Neumann debiaser: consumes bit pairs, emits at most one bit each.
class VonNeumannDebiaser {
 public:
  /// Feed one raw bit; returns the debiased bit when a pair completes with
  /// differing values.
  std::optional<int> feed(int bit) {
    if (!pending_) {
      pending_ = bit + 1;  // store as 1/2 to distinguish from "none"
      return std::nullopt;
    }
    const int first = *pending_ - 1;
    pending_.reset();
    if (first == bit) return std::nullopt;
    return first;
  }

 private:
  std::optional<int> pending_;
};

}  // namespace medsec::rng
