// hmac_drbg.h — HMAC_DRBG (NIST SP 800-90A) instantiated with SHA-256.
//
// The deterministic random bit generator playing the role of the on-chip
// RNG in the modeled device: seeded once from a (modeled) entropy source,
// then generating the scalars and projective-coordinate randomizers the
// countermeasures need.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "hash/hmac.h"
#include "hash/sha256.h"
#include "rng/random_source.h"

namespace medsec::rng {

class HmacDrbg final : public RandomSource {
 public:
  /// Instantiate from seed material (entropy || nonce || personalization).
  explicit HmacDrbg(std::span<const std::uint8_t> seed_material) {
    k_.fill(0x00);
    v_.fill(0x01);
    update(seed_material);
  }

  /// Mix additional entropy into the state (SP 800-90A reseed).
  void reseed(std::span<const std::uint8_t> entropy) {
    update(entropy);
    reseed_counter_ = 1;
  }

  void generate(std::span<std::uint8_t> out) {
    std::size_t off = 0;
    while (off < out.size()) {
      v_ = hash::Hmac<hash::Sha256>::mac(k_, v_);
      const std::size_t take = std::min(v_.size(), out.size() - off);
      std::copy(v_.begin(), v_.begin() + static_cast<long>(take),
                out.begin() + static_cast<long>(off));
      off += take;
    }
    update({});
    ++reseed_counter_;
  }

  std::uint64_t next_u64() override {
    std::array<std::uint8_t, 8> buf{};
    generate(buf);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | buf[static_cast<std::size_t>(i)];
    return v;
  }

  void fill(std::span<std::uint8_t> out) override { generate(out); }

  std::uint64_t reseed_counter() const { return reseed_counter_; }

 private:
  void update(std::span<const std::uint8_t> provided) {
    // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
    hash::Hmac<hash::Sha256> h1(k_);
    h1.update(v_);
    const std::uint8_t b0 = 0x00;
    h1.update({&b0, 1});
    h1.update(provided);
    k_ = h1.finish();
    v_ = hash::Hmac<hash::Sha256>::mac(k_, v_);
    if (!provided.empty()) {
      hash::Hmac<hash::Sha256> h2(k_);
      h2.update(v_);
      const std::uint8_t b1 = 0x01;
      h2.update({&b1, 1});
      h2.update(provided);
      k_ = h2.finish();
      v_ = hash::Hmac<hash::Sha256>::mac(k_, v_);
    }
  }

  hash::Sha256::Digest k_{};
  hash::Sha256::Digest v_{};
  std::uint64_t reseed_counter_ = 1;
};

}  // namespace medsec::rng
