// xoshiro.h — xoshiro256** PRNG (Blackman & Vigna), seeded via splitmix64.
//
// The workhorse deterministic PRNG for simulations, workload generation and
// statistical experiments. Not a CSPRNG — the DRBG in hmac_drbg.h plays
// that role for key material.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "rng/random_source.h"

namespace medsec::rng {

/// splitmix64 step, used for seeding and as a cheap mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Xoshiro256 final : public RandomSource {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x6d656473656375ULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  /// Complete generator state, exposed for session snapshot/restore: a
  /// failed-over session must resume its randomness stream exactly where
  /// the dead server left it (the Box–Muller spare is part of the stream).
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool have_spare = false;
    double spare = 0.0;
  };
  State save_state() const { return State{s_, have_spare_, spare_}; }
  void load_state(const State& st) {
    s_ = st.s;
    have_spare_ = st.have_spare;
    spare_ = st.spare;
  }

  std::uint64_t next_u64() override {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Standard normal variate (Box–Muller); used by the trace noise model.
  double next_gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1, u2;
    do {
      u1 = next_unit();
    } while (u1 <= 1e-300);
    u2 = next_unit();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return mag * std::cos(kTwoPi * u2);
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace medsec::rng
