#include "ecc/scalar_mult.h"

#include "ecc/fixed_base.h"
#include "ecc/koblitz.h"

#include <stdexcept>

namespace medsec::ecc {

namespace {

Point double_and_add(const Curve& curve, const Scalar& k, const Point& p,
                     MultStats* stats) {
  if (stats) stats->op_pattern.reserve(k.bit_length());
  Point acc = Point::at_infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = curve.dbl(acc);
    if (stats) {
      ++stats->point_doubles;
      ++stats->op_slots;
    }
    const bool bit = k.bit(i);
    if (bit) {
      acc = curve.add(acc, p);
      if (stats) {
        ++stats->point_adds;
        ++stats->op_slots;
      }
    }
    if (stats) stats->op_pattern.push_back(bit ? 1 : 0);
  }
  return acc;
}

Point wnaf_mult(const Curve& curve, const Scalar& k, const Point& p,
                unsigned width, MultStats* stats) {
  const std::vector<int> digits = wnaf_digits(k, width);
  if (stats) stats->op_pattern.reserve(digits.size());
  // Precompute odd multiples P, 3P, ..., (2^(w-1)-1)P.
  std::vector<Point> odd(std::size_t{1} << (width - 2));
  odd[0] = p;
  const Point p2 = curve.dbl(p);
  for (std::size_t i = 1; i < odd.size(); ++i)
    odd[i] = curve.add(odd[i - 1], p2);

  Point acc = Point::at_infinity();
  for (std::size_t i = digits.size(); i-- > 0;) {
    acc = curve.dbl(acc);
    if (stats) {
      ++stats->point_doubles;
      ++stats->op_slots;
    }
    const int d = digits[i];
    if (d != 0) {
      const Point& m = odd[static_cast<std::size_t>((d > 0 ? d : -d) / 2)];
      acc = curve.add(acc, d > 0 ? m : curve.negate(m));
      if (stats) {
        ++stats->point_adds;
        ++stats->op_slots;
      }
    }
    if (stats) stats->op_pattern.push_back(d != 0 ? 1 : 0);
  }
  return acc;
}

/// wNAF window for the interleaved MSM: 4 precomputed odd multiples
/// (1, 3, 5, 7)·P per term, ~163/5 additions per full-width scalar.
constexpr unsigned kMsmWidth = 4;
constexpr std::size_t kMsmOdd = std::size_t{1} << (kMsmWidth - 2);

/// Normalize a flat list of López–Dahab points to affine with one shared
/// batch inversion. Z == 0 (infinity) entries stay at their zero marker and
/// come back as the point at infinity.
std::vector<Point> normalize_ld_batch(const std::vector<LdPoint>& pts) {
  std::vector<Fe> zinv(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) zinv[i] = pts[i].Z;
  Fe::batch_inv(zinv.data(), zinv.size());
  std::vector<Point> out(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].is_infinity()) continue;  // stays at the default infinity
    out[i] = Point::affine(Fe::mul(pts[i].X, zinv[i]),
                           Fe::mul(pts[i].Y, Fe::sqr(zinv[i])));
  }
  return out;
}

}  // namespace

Point multi_scalar_mult(const Curve& curve, std::span<const MsmTerm> terms) {
  struct Entry {
    std::vector<int> digits;
    std::size_t table_offset = 0;  // into the flat odd-multiple table
  };
  std::vector<Entry> entries;
  entries.reserve(terms.size());

  // Phase 1: 2P for every live term, normalized together (1st batch_inv).
  std::vector<LdPoint> doubles;
  std::vector<const Point*> bases;
  for (const auto& t : terms) {
    if (t.p.infinity) continue;
    const Scalar k = t.k.mod(curve.order());
    if (k.is_zero()) continue;
    Entry e;
    e.digits = wnaf_digits(k, kMsmWidth);
    e.table_offset = bases.size() * kMsmOdd;
    entries.push_back(std::move(e));
    bases.push_back(&t.p);
    doubles.push_back(ld_double(curve, LdPoint::from_affine(t.p)));
  }
  if (entries.empty()) return Point::at_infinity();
  const std::vector<Point> two_p = normalize_ld_batch(doubles);

  // Phase 2: odd multiples 1P, 3P, 5P, 7P per term — a mixed-addition chain
  // in projective coordinates, normalized together (2nd batch_inv).
  std::vector<LdPoint> odd_ld;
  odd_ld.reserve(bases.size() * kMsmOdd);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    LdPoint acc = LdPoint::from_affine(*bases[i]);
    odd_ld.push_back(acc);
    for (std::size_t j = 1; j < kMsmOdd; ++j) {
      acc = ld_add_affine(curve, acc, two_p[i]);
      odd_ld.push_back(acc);
    }
  }
  const std::vector<Point> odd = normalize_ld_batch(odd_ld);

  // Phase 3: one shared doubling chain, interleaved wNAF additions.
  std::size_t max_len = 0;
  for (const auto& e : entries)
    if (e.digits.size() > max_len) max_len = e.digits.size();

  LdPoint acc = LdPoint::infinity();
  for (std::size_t j = max_len; j-- > 0;) {
    acc = ld_double(curve, acc);
    for (const auto& e : entries) {
      if (j >= e.digits.size()) continue;
      const int d = e.digits[j];
      if (d == 0) continue;
      const Point& m =
          odd[e.table_offset + static_cast<std::size_t>(d > 0 ? d : -d) / 2];
      acc = ld_add_affine(curve, acc, d > 0 ? m : curve.negate(m));
    }
  }
  return acc.to_affine();
}

Point double_scalar_mult(const Curve& curve, const Scalar& k1, const Point& p1,
                         const Scalar& k2, const Point& p2) {
  const MsmTerm terms[2] = {{k1, p1}, {k2, p2}};
  return multi_scalar_mult(curve, terms);
}

std::vector<int> wnaf_digits(const Scalar& k0, unsigned width) {
  if (width < 2 || width > 8)
    throw std::invalid_argument("wnaf_digits: width must be in [2, 8]");
  std::vector<int> out;
  Scalar k = k0;
  const std::uint64_t modulus = 1ull << width;       // 2^w
  const std::int64_t half = 1ll << (width - 1);      // 2^(w-1)
  while (!k.is_zero()) {
    int digit = 0;
    if (k.bit(0)) {
      // k mods 2^w: the signed residue in (-2^(w-1), 2^(w-1)].
      const std::int64_t r =
          static_cast<std::int64_t>(k.limb(0) & (modulus - 1));
      digit = static_cast<int>(r >= half ? r - static_cast<std::int64_t>(modulus) : r);
      if (digit > 0) {
        k.sub_in_place(Scalar{static_cast<std::uint64_t>(digit)});
      } else {
        k.add_in_place(Scalar{static_cast<std::uint64_t>(-digit)});
      }
    }
    out.push_back(digit);
    k = k >> 1;
  }
  return out;
}

Point scalar_mult(const Curve& curve, const Scalar& k, const Point& p,
                  const MultOptions& options) {
  switch (options.algorithm) {
    case MultAlgorithm::kDoubleAndAdd:
      return double_and_add(curve, k.mod(curve.order()), p, options.stats);

    case MultAlgorithm::kWnaf:
      return wnaf_mult(curve, k.mod(curve.order()), p, /*width=*/4,
                       options.stats);

    case MultAlgorithm::kTauNaf:
      return tau_naf_mult(curve, k, p, options.stats);

    case MultAlgorithm::kMontgomeryLadder:
    case MultAlgorithm::kLadderRpc: {
      const bool rpc = options.algorithm == MultAlgorithm::kLadderRpc;
      if (rpc && options.rng == nullptr)
        throw std::invalid_argument("scalar_mult: kLadderRpc requires an RNG");
      LadderOptions lo;
      lo.randomize_z = rpc;
      lo.rng = options.rng;
      lo.observer = options.observer;
      if (options.stats != nullptr) {
        // The ladder pads the scalar to a fixed order.bit_length()+1 bits
        // (see ladder.cpp), so the iteration count is a curve constant:
        // the schedule depends on nothing the adversary doesn't know.
        const std::size_t iters = curve.order().bit_length();
        options.stats->ladder_iterations = iters;
        options.stats->op_slots = iters;
        options.stats->op_pattern.assign(iters, 2);  // uniform schedule
      }
      return montgomery_ladder(curve, k, p, lo);
    }
  }
  throw std::logic_error("scalar_mult: unknown algorithm");
}

}  // namespace medsec::ecc
