#include "ecc/scalar_mult.h"

#include "ecc/koblitz.h"

#include <stdexcept>

namespace medsec::ecc {

namespace {

Point double_and_add(const Curve& curve, const Scalar& k, const Point& p,
                     MultStats* stats) {
  if (stats) stats->op_pattern.reserve(k.bit_length());
  Point acc = Point::at_infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = curve.dbl(acc);
    if (stats) {
      ++stats->point_doubles;
      ++stats->op_slots;
    }
    const bool bit = k.bit(i);
    if (bit) {
      acc = curve.add(acc, p);
      if (stats) {
        ++stats->point_adds;
        ++stats->op_slots;
      }
    }
    if (stats) stats->op_pattern.push_back(bit ? 1 : 0);
  }
  return acc;
}

Point wnaf_mult(const Curve& curve, const Scalar& k, const Point& p,
                unsigned width, MultStats* stats) {
  const std::vector<int> digits = wnaf_digits(k, width);
  if (stats) stats->op_pattern.reserve(digits.size());
  // Precompute odd multiples P, 3P, ..., (2^(w-1)-1)P.
  std::vector<Point> odd(std::size_t{1} << (width - 2));
  odd[0] = p;
  const Point p2 = curve.dbl(p);
  for (std::size_t i = 1; i < odd.size(); ++i)
    odd[i] = curve.add(odd[i - 1], p2);

  Point acc = Point::at_infinity();
  for (std::size_t i = digits.size(); i-- > 0;) {
    acc = curve.dbl(acc);
    if (stats) {
      ++stats->point_doubles;
      ++stats->op_slots;
    }
    const int d = digits[i];
    if (d != 0) {
      const Point& m = odd[static_cast<std::size_t>((d > 0 ? d : -d) / 2)];
      acc = curve.add(acc, d > 0 ? m : curve.negate(m));
      if (stats) {
        ++stats->point_adds;
        ++stats->op_slots;
      }
    }
    if (stats) stats->op_pattern.push_back(d != 0 ? 1 : 0);
  }
  return acc;
}

}  // namespace

std::vector<int> wnaf_digits(const Scalar& k0, unsigned width) {
  if (width < 2 || width > 8)
    throw std::invalid_argument("wnaf_digits: width must be in [2, 8]");
  std::vector<int> out;
  Scalar k = k0;
  const std::uint64_t modulus = 1ull << width;       // 2^w
  const std::int64_t half = 1ll << (width - 1);      // 2^(w-1)
  while (!k.is_zero()) {
    int digit = 0;
    if (k.bit(0)) {
      // k mods 2^w: the signed residue in (-2^(w-1), 2^(w-1)].
      const std::int64_t r =
          static_cast<std::int64_t>(k.limb(0) & (modulus - 1));
      digit = static_cast<int>(r >= half ? r - static_cast<std::int64_t>(modulus) : r);
      if (digit > 0) {
        k.sub_in_place(Scalar{static_cast<std::uint64_t>(digit)});
      } else {
        k.add_in_place(Scalar{static_cast<std::uint64_t>(-digit)});
      }
    }
    out.push_back(digit);
    k = k >> 1;
  }
  return out;
}

Point scalar_mult(const Curve& curve, const Scalar& k, const Point& p,
                  const MultOptions& options) {
  switch (options.algorithm) {
    case MultAlgorithm::kDoubleAndAdd:
      return double_and_add(curve, k.mod(curve.order()), p, options.stats);

    case MultAlgorithm::kWnaf:
      return wnaf_mult(curve, k.mod(curve.order()), p, /*width=*/4,
                       options.stats);

    case MultAlgorithm::kTauNaf:
      return tau_naf_mult(curve, k, p, options.stats);

    case MultAlgorithm::kMontgomeryLadder:
    case MultAlgorithm::kLadderRpc: {
      const bool rpc = options.algorithm == MultAlgorithm::kLadderRpc;
      if (rpc && options.rng == nullptr)
        throw std::invalid_argument("scalar_mult: kLadderRpc requires an RNG");
      LadderOptions lo;
      lo.randomize_z = rpc;
      lo.rng = options.rng;
      lo.observer = options.observer;
      if (options.stats != nullptr) {
        // The ladder pads the scalar to a fixed order.bit_length()+1 bits
        // (see ladder.cpp), so the iteration count is a curve constant:
        // the schedule depends on nothing the adversary doesn't know.
        const std::size_t iters = curve.order().bit_length();
        options.stats->ladder_iterations = iters;
        options.stats->op_slots = iters;
        options.stats->op_pattern.assign(iters, 2);  // uniform schedule
      }
      return montgomery_ladder(curve, k, p, lo);
    }
  }
  throw std::logic_error("scalar_mult: unknown algorithm");
}

}  // namespace medsec::ecc
