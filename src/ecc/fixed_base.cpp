#include "ecc/fixed_base.h"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace medsec::ecc {

namespace {

/// 1 if v == 0 else 0, computed without data-dependent branches (compiles
/// to or/setcc): feeds Fe::select masks in the constant-schedule paths.
std::uint64_t is_zero_mask(const Fe& v) {
  const std::uint64_t m = v.limb(0) | v.limb(1) | v.limb(2);
  return static_cast<std::uint64_t>(m == 0);
}

}  // namespace

LdPoint LdPoint::from_affine(const Point& p) {
  if (p.infinity) return LdPoint::infinity();
  return LdPoint{p.x, p.y, Fe::one()};
}

Point LdPoint::to_affine() const {
  if (is_infinity()) return Point::at_infinity();
  const Fe zi = Fe::inv(Z);
  return Point::affine(Fe::mul(X, zi), Fe::mul(Y, Fe::sqr(zi)));
}

LdPoint ld_double(const Curve& curve, const LdPoint& p) {
  // HMV "Guide to ECC" Alg 3.24 for y^2 + xy = x^3 + a x^2 + b:
  //   Z3 = X1^2 Z1^2,  X3 = X1^4 + b Z1^4,
  //   Y3 = b Z1^4 Z3 + X3 (a Z3 + Y1^2 + b Z1^4).
  const Fe x2 = Fe::sqr(p.X);
  const Fe z2 = Fe::sqr(p.Z);
  const Fe z4 = Fe::sqr(z2);
  const Fe bz4 = Fe::mul(curve.b(), z4);
  LdPoint r;
  r.Z = Fe::mul(x2, z2);
  r.X = Fe::sqr_add_mul(x2, curve.b(), z4);
  const Fe t = Fe::sqr_add_mul(p.Y, curve.a(), r.Z) + bz4;
  r.Y = Fe::mul_add_mul(bz4, r.Z, r.X, t);
  return r;
}

LdPoint ld_add_affine(const Curve& curve, const LdPoint& p, const Point& q) {
  if (q.infinity) return p;
  const std::uint64_t p_inf = is_zero_mask(p.Z);

  // lambda = A / C with A = Y1 + y2 Z1^2, B = X1 + x2 Z1, C = Z1 B.
  const Fe z2 = Fe::sqr(p.Z);
  const Fe A = p.Y + Fe::mul(q.y, z2);
  const Fe B = p.X + Fe::mul(q.x, p.Z);

  // P = Q (B == A == 0): the mixed formula degenerates; fall back to
  // doubling. P = -Q (B == 0, A != 0) needs no special case — the general
  // formula yields Z3 = 0, i.e. infinity. Both masks are evaluated
  // unconditionally (no short-circuit) so the instruction sequence stays
  // uniform; the branch itself tests a combined flag that is zero unless
  // the accumulator collides with a table tooth (~2^-159 per add for
  // uniform scalars).
  const std::uint64_t degenerate =
      (p_inf ^ 1) & is_zero_mask(B) & is_zero_mask(A);
  if (degenerate) return ld_double(curve, p);

  const Fe C = Fe::mul(p.Z, B);
  LdPoint r;
  r.Z = Fe::sqr(C);
  // X3 = A^2 + C (A + B^2 + a C)
  const Fe t = A + Fe::sqr_add_mul(B, curve.a(), C);
  r.X = Fe::sqr_add_mul(A, C, t);
  // Y3 = (E + Z3) F + G with E = A C, F = X3 + x2 Z3, G = (x2 + y2) Z3^2.
  const Fe E = Fe::mul(A, C);
  const Fe F = r.X + Fe::mul(q.x, r.Z);
  r.Y = Fe::mul_add_mul(E + r.Z, F, q.x + q.y, Fe::sqr(r.Z));

  // P at infinity: the sum is Q. Constant-time select so the comb's
  // leading zero columns don't take an accumulator-dependent branch.
  r.X = Fe::select(p_inf, r.X, q.x);
  r.Y = Fe::select(p_inf, r.Y, q.y);
  r.Z = Fe::select(p_inf, r.Z, Fe::one());
  return r;
}

FixedBaseComb::FixedBaseComb(const Curve& curve, const Point& base)
    : curve_(curve), base_(base) {
  if (base.infinity)
    throw std::invalid_argument("FixedBaseComb: base is infinity");

  // Row anchors R_i = 2^(i * kColumns) * base, doubled in projective
  // coordinates (construction is one-time per process).
  std::array<Point, kWidth> rows;
  rows[0] = base;
  for (unsigned i = 1; i < kWidth; ++i) {
    LdPoint acc = LdPoint::from_affine(rows[i - 1]);
    for (std::size_t j = 0; j < kColumns; ++j) acc = ld_double(curve, acc);
    rows[i] = acc.to_affine();
  }

  table_[0] = Point::at_infinity();
  for (std::size_t e = 1; e < kTableSize; ++e) {
    const unsigned low = static_cast<unsigned>(e & (~e + 1));  // lowest bit
    unsigned row = 0;
    while ((1u << row) != low) ++row;
    table_[e] = curve.add(table_[e ^ low], rows[row]);
  }
}

namespace {

unsigned comb_pattern(const Scalar& k, std::size_t column) {
  unsigned pattern = 0;
  for (unsigned r = 0; r < FixedBaseComb::kWidth; ++r) {
    const std::size_t bit = r * FixedBaseComb::kColumns + column;
    pattern |= static_cast<unsigned>(k.bit(bit)) << r;
  }
  return pattern;
}

}  // namespace

Point FixedBaseComb::mult(const Scalar& k0) const {
  const Scalar k = k0.mod(curve_.order());
  LdPoint acc = LdPoint::infinity();
  for (std::size_t j = kColumns; j-- > 0;) {
    acc = ld_double(curve_, acc);
    const unsigned pattern = comb_pattern(k, j);
    if (pattern != 0) acc = ld_add_affine(curve_, acc, table_[pattern]);
  }
  return acc.to_affine();
}

Point FixedBaseComb::mult_ct(const Scalar& k0) const {
  const Scalar k = k0.mod(curve_.order());
  LdPoint acc = LdPoint::infinity();
  for (std::size_t j = kColumns; j-- > 0;) {
    acc = ld_double(curve_, acc);
    const unsigned pattern = comb_pattern(k, j);

    // Masked full-table scan: every entry is read, the selected tooth is
    // kept (table_[1] stands in for the never-added pattern-0 tooth so the
    // add below always executes).
    Fe tx = table_[1].x, ty = table_[1].y;
    for (unsigned e = 2; e < kTableSize; ++e) {
      const std::uint64_t hit = static_cast<std::uint64_t>(pattern == e);
      tx = Fe::select(hit, tx, table_[e].x);
      ty = Fe::select(hit, ty, table_[e].y);
    }

    const LdPoint sum = ld_add_affine(curve_, acc, Point::affine(tx, ty));
    const std::uint64_t keep = static_cast<std::uint64_t>(pattern == 0);
    acc.X = Fe::select(keep, sum.X, acc.X);
    acc.Y = Fe::select(keep, sum.Y, acc.Y);
    acc.Z = Fe::select(keep, sum.Z, acc.Z);
  }
  return acc.to_affine();
}

Point scalar_mult_ld(const Curve& curve, const Scalar& k, const Point& p) {
  if (p.infinity) return p;
  LdPoint acc = LdPoint::infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = ld_double(curve, acc);
    if (k.bit(i)) acc = ld_add_affine(curve, acc, p);
  }
  return acc.to_affine();
}

namespace detail {
std::string curve_cache_key(const Curve& curve) {
  return curve.name() + '/' + curve.b().to_hex() + '/' +
         curve.base_point().x.to_hex() + '/' + curve.base_point().y.to_hex() +
         '/' + curve.order().to_hex();
}
}  // namespace detail

const FixedBaseComb& generator_comb(const Curve& curve) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<FixedBaseComb>> cache;
  const std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[detail::curve_cache_key(curve)];
  if (!slot)
    slot = std::make_unique<FixedBaseComb>(curve, curve.base_point());
  return *slot;
}

}  // namespace medsec::ecc
