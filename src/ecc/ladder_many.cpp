#include "ecc/ladder_many.h"

#include <stdexcept>

namespace medsec::ecc {

void ladder_add_lanes(const LaneBatch& xd, const LaneBatch& x1,
                      const LaneBatch& z1, const LaneBatch& x2,
                      const LaneBatch& z2, LaneBatch& xa, LaneBatch& za,
                      LaneLadderScratch& scr) {
  LaneBatch::mul(x1, z2, scr.t);
  LaneBatch::mul(x2, z1, scr.u);
  LaneBatch::add(scr.t, scr.u, scr.s);
  LaneBatch::sqr(scr.s, za);
  LaneBatch::mul_add_mul(xd, za, scr.t, scr.u, xa);  // xd·za + t·u
}

void ladder_double_lanes(const LaneBatch& b, const LaneBatch& x,
                         const LaneBatch& z, LaneBatch& x3, LaneBatch& z3,
                         LaneLadderScratch& scr) {
  LaneBatch::sqr(x, scr.xs);
  LaneBatch::sqr(z, scr.zs);
  LaneBatch::mul(scr.xs, scr.zs, z3);
  LaneBatch::sqr(scr.zs, scr.zss);
  LaneBatch::sqr_add_mul(scr.xs, b, scr.zss, x3);  // xs^2 + b·zs^2
}

void LadderManyWorkspace::resize(std::size_t n) {
  s.resize(n);
  scr.resize(n);
  b_lanes.resize(n);
  xd.resize(n);
  xa.resize(n);
  za.resize(n);
  xdbl.resize(n);
  zdbl.resize(n);
  rand_lanes.resize(n);
  padded.resize(n);
  choices.resize(n);
}

namespace {

/// Shared lockstep engine: validates bases, builds per-lane start states,
/// applies the optional projective randomization and runs `iterations`
/// batched ladder iterations, taking lane j's bit for iteration index i
/// from bit_of(j, i). Both public entries funnel here so the classic and
/// the wide (blinded) ladders cannot drift apart by implementation
/// detail.
template <typename BitFn>
void run_lockstep(const Curve& curve, const Point* ps, std::size_t n,
                  const BatchLadderOptions& options, LadderManyWorkspace& ws,
                  LadderState* out, std::size_t iterations, bool zero_start,
                  BitFn&& bit_of) {
  for (std::size_t i = 0; i < n; ++i) {
    if (ps[i].infinity)
      throw std::invalid_argument("ladder_many: P is infinity");
    if (ps[i].x.is_zero())
      throw std::invalid_argument("ladder_many: x(P) = 0 (order-2 point)");
  }

  ws.resize(n);
  LadderLanes& s = ws.s;

  const Fe b = curve.b();
  ws.b_lanes.fill(b);
  for (std::size_t i = 0; i < n; ++i) ws.xd.set(i, ps[i].x);

  // Start state per lane: the classic entry consumes the scalar's leading
  // 1 as (P, 2P); the wide entry starts from the neutral (O, P) so leading
  // zeros are processed correctly.
  for (std::size_t i = 0; i < n; ++i) {
    const LadderState init = zero_start ? ladder_zero_state(ps[i].x)
                                        : ladder_initial_state(b, ps[i].x);
    s.x1.set(i, init.x1);
    s.z1.set(i, init.z1);
    s.x2.set(i, init.x2);
    s.z2.set(i, init.z2);
  }

  if (options.randomizers != nullptr) {
    LaneBatch& l = ws.rand_lanes;
    for (std::size_t i = 0; i < n; ++i) {
      if (options.randomizers[i].first.is_zero() ||
          options.randomizers[i].second.is_zero())
        throw std::invalid_argument("ladder_many: zero randomizer");
      l.set(i, options.randomizers[i].first);
    }
    LaneBatch::mul(s.x1, l, s.x1);
    LaneBatch::mul(s.z1, l, s.z1);
    for (std::size_t i = 0; i < n; ++i)
      l.set(i, options.randomizers[i].second);
    LaneBatch::mul(s.x2, l, s.x2);
    LaneBatch::mul(s.z2, l, s.z2);
  }

  const bool has_observer = static_cast<bool>(options.observer);

  for (std::size_t i = iterations; i-- > 0;) {
    for (std::size_t j = 0; j < n; ++j) ws.choices[j] = bit_of(j, i);

    // One lockstep ladder_iteration: cswap / add+double / cswap, every
    // field op batched across the n lanes.
    LaneBatch::cswap(ws.choices.data(), s.x1, s.x2);
    LaneBatch::cswap(ws.choices.data(), s.z1, s.z2);
    ladder_add_lanes(ws.xd, s.x1, s.z1, s.x2, s.z2, ws.xa, ws.za, ws.scr);
    ladder_double_lanes(ws.b_lanes, s.x1, s.z1, ws.xdbl, ws.zdbl, ws.scr);
    std::swap(s.x1, ws.xdbl);
    std::swap(s.z1, ws.zdbl);
    std::swap(s.x2, ws.xa);
    std::swap(s.z2, ws.za);
    LaneBatch::cswap(ws.choices.data(), s.x1, s.x2);
    LaneBatch::cswap(ws.choices.data(), s.z1, s.z2);

    if (has_observer) options.observer(i, s);
  }

  for (std::size_t i = 0; i < n; ++i) out[i] = s.lane_state(i);
}

}  // namespace

void ladder_many_into(const Curve& curve, const Scalar* ks, const Point* ps,
                      std::size_t n, const BatchLadderOptions& options,
                      LadderManyWorkspace& ws, LadderState* out) {
  if (n == 0) return;

  // Constant-length recoding makes every lane's iteration count the same
  // curve constant — the property that lets N ladders run in lockstep at
  // all (and the paper's timing-attack countermeasure).
  ws.padded.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    ws.padded[i] = constant_length_scalar(curve, ks[i]);
  const std::size_t t = curve.order().bit_length() + 1;

  run_lockstep(curve, ps, n, options, ws, out, t - 1, /*zero_start=*/false,
               [&ws](std::size_t j, std::size_t i) -> std::uint8_t {
                 return ws.padded[j].bit(i) ? 1 : 0;
               });
}

void ladder_many_wide_into(const Curve& curve, const WideScalar* ks,
                           std::size_t iterations, const Point* ps,
                           std::size_t n, const BatchLadderOptions& options,
                           LadderManyWorkspace& ws, LadderState* out) {
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i)
    if (iterations < ks[i].bit_length())
      throw std::invalid_argument(
          "ladder_many_wide: iteration count does not cover a lane scalar");
  if (iterations > WideScalar::kBits)
    throw std::invalid_argument("ladder_many_wide: iteration count too wide");

  run_lockstep(curve, ps, n, options, ws, out, iterations,
               /*zero_start=*/true,
               [ks](std::size_t j, std::size_t i) -> std::uint8_t {
                 return ks[j].bit(i) ? 1 : 0;
               });
}

std::vector<LadderState> ladder_many(const Curve& curve, const Scalar* ks,
                                     const Point* ps, std::size_t n,
                                     const BatchLadderOptions& options) {
  std::vector<LadderState> out(n);
  LadderManyWorkspace ws;
  ladder_many_into(curve, ks, ps, n, options, ws, out.data());
  return out;
}

}  // namespace medsec::ecc
