// koblitz.h — tau-adic scalar multiplication on Koblitz curves.
//
// The paper picks K-163 ("Our ECC chip uses a Koblitz curve") partly for
// the carry-free field and partly because Koblitz curves admit the
// cheapest known scalar multiplication: the Frobenius endomorphism
// tau(x, y) = (x^2, y^2) costs two squarings, and tau satisfies
//
//     tau^2 - mu*tau + 2 = 0,      mu = (-1)^(1-a)  (+1 on K-163)
//
// so any scalar can be rewritten in base tau and the point multiplication
// needs NO point doublings at all — only Frobenius maps and additions.
//
// This module implements the tau-adic NAF (Solinas' TNAF): digits in
// {0, +-1}, no two adjacent nonzero. We expand the *integer* scalar
// directly (no lattice partial reduction), which yields ~2m digits
// instead of ~m; the add count is what matters for the comparison and it
// is already ~2m/3 vs double-and-add's m/2 adds PLUS m doublings.
// Length-m expansions via partial reduction modulo (tau^m - 1)/(tau - 1)
// are the natural next optimization (Solinas 2000) and are documented as
// future work in DESIGN.md.
//
// The trade-off the paper's chip makes: TNAF beats the ladder on speed
// but its add positions are key-dependent (SPA!) and it needs the y
// coordinate — so the constant-schedule x-only ladder wins on the
// device, and TNAF serves the energy-rich reader side. The benches
// quantify exactly that.
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/curve.h"
#include "ecc/scalar_mult.h"

namespace medsec::ecc {

/// tau-adic NAF digits of k (little-endian, each 0 or +-1, non-adjacent).
/// mu must be the curve's Frobenius trace sign (Curve::frobenius_trace_mu).
/// Throws std::invalid_argument for |mu| != 1.
std::vector<int> tau_naf_digits(const Scalar& k, int mu);

/// Width-w tau-adic digits: odd integer digits u with |u| < 2^(w-1), and
/// after every nonzero digit at least w-1 zeros (the expansion is chosen
/// so a + b*tau becomes divisible by tau^w after each subtraction). The
/// nonzero-digit density drops from ~1/3 (w = 2) to ~1/(w+1), which is
/// the point of the precomputed table below. width in [2, 5] (the
/// integer-digit expansion terminates for these widths; larger windows
/// would need Solinas' element digits); width 2 reproduces
/// tau_naf_digits.
std::vector<int> tau_naf_window_digits(const Scalar& k, int mu,
                                       unsigned width);

/// Precomputed odd multiples P, 3P, ..., (2^(w-1)-1)P of a fixed base
/// point for width-w tau-adic multiplication (the tau-NAF analogue of the
/// wNAF table). Build once per base point; the generator's table is
/// cached process-wide by generator_tau_precomp().
struct TauNafPrecomp {
  unsigned width;
  Point base;
  std::vector<Point> odd;  ///< odd[i] = (2i+1)·base

  TauNafPrecomp(const Curve& curve, const Point& p, unsigned width = 4);
};

/// k*P via width-4 windowed TNAF: Frobenius maps + additions, zero
/// doublings. Precondition: the curve is Koblitz (a in {0,1}, b = 1);
/// K-163 and the test curves qualify. The result is cross-checked against
/// the ladder in tests for random scalars.
Point tau_naf_mult(const Curve& curve, const Scalar& k, const Point& p,
                   MultStats* stats = nullptr);

/// Same, with a caller-held precomputed table (amortizes the table across
/// many multiplications by the same base point).
Point tau_naf_mult(const Curve& curve, const Scalar& k,
                   const TauNafPrecomp& precomp, MultStats* stats = nullptr);

/// Process-wide cached width-4 table for a curve's generator.
const TauNafPrecomp& generator_tau_precomp(const Curve& curve);

}  // namespace medsec::ecc
