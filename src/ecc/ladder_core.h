// ladder_core.h — the Montgomery-ladder formulas, templated over the
// field-element type.
//
// THE one definition of the López–Dahab x-only add / double / iteration
// arithmetic. Production code instantiates it with FE = gf2m::Gf163
// (through the wrappers in ladder.cpp, so every existing call site keeps
// its signature), and the constant-time audit harness instantiates it
// with FE = ctaudit::TaintFe — the secret-taint interpreter. The audit
// therefore exercises the *same* formulas the victim runs, not a
// re-implementation that could drift: a secret-dependent branch or table
// index introduced into the ladder core shows up in the taint report by
// construction.
//
// FE contract: static mul / sqr / mul_add_mul / sqr_add_mul / cswap /
// zero / one, plus operator+ (characteristic-2 addition). `Bit` is the
// cswap selector type: std::uint64_t in production, Tainted<std::uint64_t>
// in the audit build — cswap must consume it branch-free (masking), which
// is exactly what the taint wrapper verifies.
#pragma once

namespace medsec::ecc {

/// The ladder's working state over any field-element type:
/// (x1 : z1) = k_high·P, (x2 : z2) = (k_high + 1)·P.
template <class FE>
struct LadderStateT {
  FE x1, z1, x2, z2;
};

/// x-only differential addition: Z3 = (X1 Z2 + X2 Z1)^2,
/// X3 = x_diff·Z3 + (X1 Z2)(X2 Z1).
template <class FE>
inline void ladder_add_t(const FE& xd, const FE& x1, const FE& z1,
                         const FE& x2, const FE& z2, FE& x3, FE& z3) {
  const FE t = FE::mul(x1, z2);
  const FE u = FE::mul(x2, z1);
  z3 = FE::sqr(t + u);
  x3 = FE::mul_add_mul(xd, z3, t, u);  // xd·z3 + t·u, one reduction
}

/// x-only doubling: X3 = X^4 + b Z^4, Z3 = X^2 Z^2.
template <class FE>
inline void ladder_double_t(const FE& b, const FE& x, const FE& z, FE& x3,
                            FE& z3) {
  const FE x2 = FE::sqr(x);
  const FE z2 = FE::sqr(z);
  z3 = FE::mul(x2, z2);
  x3 = FE::sqr_add_mul(x2, b, FE::sqr(z2));  // x2^2 + b·z2^2, one reduction
}

/// Unrandomized initial state for base-point x:
/// lo = P = (x : 1), hi = 2P = (x^4 + b : x^2).
template <class FE>
inline LadderStateT<FE> ladder_initial_state_t(const FE& b, const FE& x) {
  return LadderStateT<FE>{x, FE::one(), FE::sqr(FE::sqr(x)) + b, FE::sqr(x)};
}

/// Neutral start state (lo, hi) = (O, P) = ((1 : 0), (x : 1)) — correct
/// for scalars with leading zero bits (the blinded fixed-length entry).
template <class FE>
inline LadderStateT<FE> ladder_zero_state_t(const FE& x) {
  return LadderStateT<FE>{FE::one(), FE::zero(), x, FE::one()};
}

/// One ladder iteration for key bit `bit` (cswap / add+double / cswap).
template <class FE, class Bit>
inline void ladder_iteration_t(const FE& b, const FE& x_base,
                               LadderStateT<FE>& s, const Bit& bit) {
  // Constant-time role swap: after the swap, (x1, z1) is the accumulator
  // to double and (x2, z2) receives the differential add.
  FE::cswap(bit, s.x1, s.x2);
  FE::cswap(bit, s.z1, s.z2);

  FE xa, za, xd, zd;
  ladder_add_t(x_base, s.x1, s.z1, s.x2, s.z2, xa, za);
  ladder_double_t(b, s.x1, s.z1, xd, zd);
  s.x1 = xd;
  s.z1 = zd;
  s.x2 = xa;
  s.z2 = za;

  FE::cswap(bit, s.x1, s.x2);
  FE::cswap(bit, s.z1, s.z2);
}

}  // namespace medsec::ecc
