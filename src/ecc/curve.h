// curve.h — binary-field elliptic curves y^2 + xy = x^3 + a·x^2 + b over
// F_2^163, and affine point arithmetic.
//
// The paper's co-processor (§4) uses the NIST Koblitz curve K-163 ("Our ECC
// chip uses a Koblitz curve defined over F_2^163, which provides 80-bit
// security, equivalent to 1024-bit RSA"). We also carry B-163 so tests can
// show the code is not specialized to one parameter set.
//
// Affine arithmetic here is the *reference* path (used by the reader/server
// side and by tests); the constant-time ladder in ladder.h is what the
// modeled tag hardware runs.
#pragma once

#include <optional>
#include <string>

#include "bigint/biguint.h"
#include "bigint/modring.h"
#include "gf2m/gf2_163.h"

namespace medsec::ecc {

using Fe = gf2m::Gf163;          ///< field element
using Scalar = bigint::U192;     ///< scalar (fits 163-bit order)

/// An affine point, or the point at infinity.
struct Point {
  Fe x;
  Fe y;
  bool infinity = true;

  static Point at_infinity() { return Point{}; }
  static Point affine(const Fe& x, const Fe& y) {
    return Point{x, y, false};
  }

  friend bool operator==(const Point& p, const Point& q) {
    if (p.infinity || q.infinity) return p.infinity == q.infinity;
    return p.x == q.x && p.y == q.y;
  }
};

/// Curve y^2 + xy = x^3 + a x^2 + b over F_2^163 with a distinguished
/// base point of prime order.
class Curve {
 public:
  Curve(std::string name, const Fe& a, const Fe& b, const Fe& gx,
        const Fe& gy, const Scalar& order, unsigned cofactor);

  /// NIST K-163 (the paper's curve): a = b = 1.
  static const Curve& k163();
  /// NIST B-163 (pseudo-random curve over the same field).
  static const Curve& b163();

  const std::string& name() const { return name_; }
  const Fe& a() const { return a_; }
  const Fe& b() const { return b_; }
  const Point& base_point() const { return g_; }
  const Scalar& order() const { return order_; }
  unsigned cofactor() const { return cofactor_; }
  /// Arithmetic modulo the group order (for protocol scalars).
  const bigint::ModRing<192>& scalar_ring() const { return ring_; }

  /// Membership test: y^2 + xy == x^3 + a x^2 + b (infinity is on-curve).
  bool is_on_curve(const Point& p) const;

  /// Full point validation for untrusted inputs: on-curve, not infinity,
  /// and in the prime-order subgroup. This is the fault-attack /
  /// invalid-curve-attack gate the paper's security analysis assumes at the
  /// protocol boundary.
  ///
  /// For cofactor-2 curves (both NIST binary curves here) the subgroup test
  /// is the O(1) point-halving criterion Tr(x) == Tr(a) instead of an
  /// order-length scalar multiplication — the doubling image 2E, which the
  /// criterion characterizes, IS the prime-order subgroup when the cofactor
  /// is 2. Other cofactors fall back to the exact order·P check.
  bool validate_subgroup_point(const Point& p) const;

  /// The exact order·P == infinity subgroup check (one projective scalar
  /// multiplication). Reference oracle for the fast path above; tests
  /// cross-check the two on points inside and outside the subgroup.
  bool validate_subgroup_point_exact(const Point& p) const;

  Point negate(const Point& p) const;
  Point add(const Point& p, const Point& q) const;
  Point dbl(const Point& p) const;

  /// The Frobenius endomorphism phi(x, y) = (x^2, y^2). On a Koblitz
  /// curve (a, b in F_2, the paper's K-163) this maps curve points to
  /// curve points in two squarings — the structural reason Koblitz
  /// curves admit very cheap scalar multiplication (tau-adic methods) and
  /// part of why the paper picks one. Satisfies phi^2 + 2 = mu*phi with
  /// mu = (-1)^(1-a), i.e. mu = 1 for K-163.
  Point frobenius(const Point& p) const;
  /// mu for phi^2 - mu*phi + 2 = 0 (+1 for a = 1, -1 for a = 0).
  int frobenius_trace_mu() const;

  /// Reference scalar multiplication (simple, not constant-time; used as a
  /// test oracle and by the energy-rich reader/server side).
  Point scalar_mult_reference(const Scalar& k, const Point& p) const;

  /// Point compression: x plus one bit. For x != 0 the bit is the trace-adjusted
  /// low bit of y/x (standard X9.62 binary-field compression).
  struct Compressed {
    Fe x;
    int y_bit;
  };
  Compressed compress(const Point& p) const;
  std::optional<Point> decompress(const Compressed& c) const;

 private:
  std::string name_;
  Fe a_;
  Fe b_;
  Point g_;
  Scalar order_;
  unsigned cofactor_;
  int trace_a_;  ///< Tr(a), precomputed for the halving-criterion gate
  bigint::ModRing<192> ring_;
};

}  // namespace medsec::ecc
