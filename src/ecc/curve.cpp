#include "ecc/curve.h"

#include <stdexcept>

#include "ecc/fixed_base.h"

namespace medsec::ecc {

Curve::Curve(std::string name, const Fe& a, const Fe& b, const Fe& gx,
             const Fe& gy, const Scalar& order, unsigned cofactor)
    : name_(std::move(name)),
      a_(a),
      b_(b),
      g_(Point::affine(gx, gy)),
      order_(order),
      cofactor_(cofactor),
      trace_a_(Fe::trace(a)),
      ring_(order) {
  if (b_.is_zero())
    throw std::invalid_argument("Curve: b = 0 is singular");
  if (!is_on_curve(g_))
    throw std::invalid_argument("Curve: base point not on curve");
  // Sanity for the cofactor-2 halving-criterion subgroup gate: the base
  // point generates the prime-order subgroup, so it must pass the gate.
  if (cofactor_ == 2 && Fe::trace(g_.x) != trace_a_)
    throw std::invalid_argument("Curve: base point fails Tr(x) == Tr(a)");
}

const Curve& Curve::k163() {
  static const Curve c{
      "K-163",
      Fe::one(),
      Fe::one(),
      Fe::from_hex("2FE13C0537BBC11ACAA07D793DE4E6D5E5C94EEE8"),
      Fe::from_hex("289070FB05D38FF58321F2E800536D538CCDAA3D9"),
      Scalar::from_hex("4000000000000000000020108A2E0CC0D99F8A5EF"),
      2};
  return c;
}

const Curve& Curve::b163() {
  static const Curve c{
      "B-163",
      Fe::one(),
      Fe::from_hex("20A601907B8C953CA1481EB10512F78744A3205FD"),
      Fe::from_hex("3F0EBA16286A2D57EA0991168D4994637E8343E36"),
      Fe::from_hex("0D51FBC6C71A0094FA2CDD545B11C5C0C797324F1"),
      Scalar::from_hex("40000000000000000000292FE77E70C12A4234C33"),
      2};
  return c;
}

bool Curve::is_on_curve(const Point& p) const {
  if (p.infinity) return true;
  // y^2 + xy == x^3 + a x^2 + b
  const Fe lhs = Fe::sqr(p.y) + Fe::mul(p.x, p.y);
  const Fe x2 = Fe::sqr(p.x);
  const Fe rhs = Fe::mul(x2, p.x) + Fe::mul(a_, x2) + b_;
  return lhs == rhs;
}

bool Curve::validate_subgroup_point(const Point& p) const {
  if (p.infinity) return false;
  if (!is_on_curve(p)) return false;
  if (p.x.is_zero()) return false;  // the order-2 point (0, sqrt(b))
  if (cofactor_ == 2) {
    // Point-halving criterion (Knudsen): on y^2 + xy = x^3 + a x^2 + b an
    // affine point is in the image of doubling iff Tr(x) == Tr(a), and for
    // cofactor 2 that image is exactly the prime-order subgroup (it has
    // index 2 and contains no 2-torsion). One trace computation instead of
    // an order-length scalar multiplication — this is what lets the engine
    // layer validate thousands of incoming points per second.
    return Fe::trace(p.x) == trace_a_;
  }
  return validate_subgroup_point_exact(p);
}

bool Curve::validate_subgroup_point_exact(const Point& p) const {
  if (p.infinity) return false;
  if (!is_on_curve(p)) return false;
  if (p.x.is_zero()) return false;
  // Exact order·P in projective coordinates: one inversion total instead
  // of one per affine group operation. (The constant-length ladder cannot
  // be used here: its k -> k + n padding is only sound for points whose
  // order divides n, which is the very thing being checked.)
  return scalar_mult_ld(*this, order_, p).infinity;
}

Point Curve::negate(const Point& p) const {
  if (p.infinity) return p;
  return Point::affine(p.x, p.x + p.y);
}

Point Curve::frobenius(const Point& p) const {
  if (p.infinity) return p;
  return Point::affine(Fe::sqr(p.x), Fe::sqr(p.y));
}

int Curve::frobenius_trace_mu() const {
  // mu = (-1)^(1 - a); meaningful for Koblitz curves (a in {0, 1}, b = 1).
  // K-163 has a = 1 -> mu = +1.
  return a_ == Fe::one() ? 1 : -1;
}

Point Curve::add(const Point& p, const Point& q) const {
  if (p.infinity) return q;
  if (q.infinity) return p;
  if (p.x == q.x) {
    if (p.y == q.y) return dbl(p);
    return Point::at_infinity();  // q == -p
  }
  const Fe dx = p.x + q.x;
  const Fe lambda = Fe::mul(p.y + q.y, Fe::inv(dx));
  const Fe x3 = Fe::sqr(lambda) + lambda + dx + a_;
  const Fe y3 = Fe::mul(lambda, p.x + x3) + x3 + p.y;
  return Point::affine(x3, y3);
}

Point Curve::dbl(const Point& p) const {
  if (p.infinity) return p;
  if (p.x.is_zero()) return Point::at_infinity();  // order-2 point
  const Fe lambda = p.x + Fe::mul(p.y, Fe::inv(p.x));
  const Fe x3 = Fe::sqr(lambda) + lambda + a_;
  const Fe y3 = Fe::sqr(p.x) + Fe::mul(lambda + Fe::one(), x3);
  return Point::affine(x3, y3);
}

Point Curve::scalar_mult_reference(const Scalar& k, const Point& p) const {
  Point acc = Point::at_infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = dbl(acc);
    if (k.bit(i)) acc = add(acc, p);
  }
  return acc;
}

Curve::Compressed Curve::compress(const Point& p) const {
  if (p.infinity)
    throw std::invalid_argument("compress: cannot compress infinity");
  int bit = 0;
  if (!p.x.is_zero()) {
    const Fe z = Fe::mul(p.y, Fe::inv(p.x));
    bit = z.bit(0) ? 1 : 0;
  }
  return Compressed{p.x, bit};
}

std::optional<Point> Curve::decompress(const Compressed& c) const {
  if (c.x.is_zero()) {
    // y^2 = b -> the order-2 point.
    const Fe y = Fe::sqrt(b_);
    return Point::affine(c.x, y);
  }
  // Solve y^2 + xy = x^3 + a x^2 + b. Substitute y = x*z:
  // z^2 + z = x + a + b/x^2.
  const Fe x_inv = Fe::inv(c.x);
  const Fe rhs = c.x + a_ + Fe::mul(b_, Fe::sqr(x_inv));
  if (Fe::trace(rhs) != 0) return std::nullopt;  // no solution
  Fe z = Fe::half_trace(rhs);
  // half_trace solves z^2+z=rhs when Tr(rhs)=0; pick the root with the
  // requested low bit (the other root is z+1).
  if ((z.bit(0) ? 1 : 0) != c.y_bit) z += Fe::one();
  const Point p = Point::affine(c.x, Fe::mul(c.x, z));
  if (!is_on_curve(p)) return std::nullopt;
  return p;
}

}  // namespace medsec::ecc
