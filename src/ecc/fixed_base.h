// fixed_base.h — fixed-base comb scalar multiplication (Lim–Lee) with
// López–Dahab projective arithmetic.
//
// Every Schnorr signature, ECIES encapsulation, and key generation
// multiplies the *same* point — the curve generator. The comb method
// precomputes the 2^w - 1 "teeth" sums T[e] = sum_i e_i * 2^(i*d) * G once
// and then computes k*G in d ≈ 163/w point doublings plus at most d
// additions — with the doublings and additions running in López–Dahab
// projective coordinates (x = X/Z, y = Y/Z^2), so the whole multiplication
// costs ONE field inversion (the final affine conversion) instead of one
// per affine group operation.
//
// Two evaluation modes:
//   mult()    — variable-time table indexing; verifier/reader-side use
//               (public scalars, or the energy-rich server of the paper).
//   mult_ct() — fixed d-iteration schedule, every iteration performs one
//               double and one add, and the tooth is fetched with a masked
//               full-table scan (no secret-dependent addressing): the
//               device-side replacement for generator multiplications.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ecc/curve.h"

namespace medsec::ecc {

/// A point in López–Dahab projective coordinates: x = X/Z, y = Y/Z^2.
/// Z == 0 encodes the point at infinity.
struct LdPoint {
  Fe X, Y, Z;

  static LdPoint infinity() { return LdPoint{}; }
  static LdPoint from_affine(const Point& p);
  Point to_affine() const;  ///< one field inversion
  bool is_infinity() const { return Z.is_zero(); }
};

/// 2P in López–Dahab coordinates (5M + 5S, no inversion).
LdPoint ld_double(const Curve& curve, const LdPoint& p);
/// P + Q with Q affine ("mixed" addition, 9M + 5S, no inversion).
/// Handles P = infinity, P = Q (doubling) and P = -Q (infinity).
LdPoint ld_add_affine(const Curve& curve, const LdPoint& p, const Point& q);

class FixedBaseComb {
 public:
  static constexpr unsigned kWidth = 4;                  // comb rows
  static constexpr std::size_t kColumns = 41;            // ceil(163 / 4)
  static constexpr std::size_t kTableSize = 1u << kWidth;

  FixedBaseComb(const Curve& curve, const Point& base);

  const Point& base() const { return base_; }

  /// k·base, variable-time table indexing. Reduces k mod the group order.
  Point mult(const Scalar& k) const;

  /// k·base with a key-independent operation schedule: exactly kColumns
  /// double+add iterations, tooth selected by masked scan over the whole
  /// table. Reduces k mod the group order.
  Point mult_ct(const Scalar& k) const;

 private:
  Curve curve_;  // by value: the comb must outlive any caller-held Curve
  Point base_;
  /// table_[e] = sum of e_i * 2^(i*kColumns) * base over set bits of e;
  /// table_[0] is the point at infinity.
  std::array<Point, kTableSize> table_;
};

/// Process-wide comb for a curve's generator, built lazily on first use and
/// cached for the lifetime of the process. Cached by curve *identity*
/// (parameters, not address), so dynamically constructed Curve objects —
/// including ones whose addresses get recycled — are safe.
const FixedBaseComb& generator_comb(const Curve& curve);

namespace detail {
/// Stable identity key for per-curve caches.
std::string curve_cache_key(const Curve& curve);
}  // namespace detail

/// Left-to-right double-and-add in López–Dahab coordinates over the EXACT
/// scalar (no modular reduction, no constant-length padding): one field
/// inversion for the whole multiplication instead of one per affine group
/// operation. Variable-time — the verifier/reader-side workhorse for
/// arbitrary points, and what backs the order·P == infinity subgroup gate.
Point scalar_mult_ld(const Curve& curve, const Scalar& k, const Point& p);

}  // namespace medsec::ecc
