// ladder_many.h — N Montgomery ladders in lockstep over the batch field
// layer.
//
// The paper's campaigns run the *same* fixed-length ladder thousands of
// times on independent (scalar, point) pairs: every execution performs an
// identical 162-iteration schedule of field operations, differing only in
// data. That makes the whole campaign embarrassingly lane-parallel — this
// file steps N independent ladders through one shared iteration loop, with
// every field operation batched across lanes (Gf163xN), so the wide
// backends — VPCLMULQDQ ZMM/YMM (8–16 lanes register-resident),
// interleaved clmul, 64/256-lane bitsliced — see long runs of
// independent products instead of one latency-bound dependency chain.
// Callers that size batches from active_lane_vtable()->preferred_width
// (the campaign engine uses 4x) retarget onto wider silicon with no
// code changes.
//
// Bit-exactness contract: lane i of ladder_many() evolves through exactly
// the field operations (same fusions, same order) of the scalar
// montgomery_ladder_raw(), so per-lane observations — the trace
// simulator's leakage taps — are bit-identical to a serial run. The
// determinism tests assert this.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "gf2m/gf163_lanes.h"

namespace medsec::ecc {

using LaneBatch = gf2m::Gf163xN;

/// The four working registers of N lockstep ladders.
struct LadderLanes {
  LaneBatch x1, z1, x2, z2;

  void resize(std::size_t n) {
    x1.resize(n);
    z1.resize(n);
    x2.resize(n);
    z2.resize(n);
  }
  std::size_t lanes() const { return x1.lanes(); }

  LadderState lane_state(std::size_t i) const {
    return LadderState{x1.get(i), z1.get(i), x2.get(i), z2.get(i)};
  }
  /// Register-transfer Hamming weight of lane i (the DPA leakage unit;
  /// matches hamming weight of the scalar LadderObservation registers).
  int hamming_weight(std::size_t i) const {
    return x1.hamming_weight(i) + z1.hamming_weight(i) +
           x2.hamming_weight(i) + z2.hamming_weight(i);
  }

  /// Bulk form: out[i] = hamming_weight(lane i) for all lanes, walking
  /// the twelve limb arrays contiguously (what the campaign tap calls
  /// once per iteration instead of N scattered per-lane reads).
  void hamming_weights(int* out) const {
    for (std::size_t i = 0; i < lanes(); ++i) out[i] = 0;
    x1.hamming_weights_add(out);
    z1.hamming_weights_add(out);
    x2.hamming_weights_add(out);
    z2.hamming_weights_add(out);
  }
};

/// Scratch batches for the lane forms of ladder_add / ladder_double.
/// Allocate once, reuse across iterations and traces (the campaign
/// engine's no-per-trace-allocation contract).
struct LaneLadderScratch {
  LaneBatch t, u, s, xs, zs, zss;
  void resize(std::size_t n) {
    t.resize(n);
    u.resize(n);
    s.resize(n);
    xs.resize(n);
    zs.resize(n);
    zss.resize(n);
  }
};

/// Lane form of ladder_add: za = (X1 Z2 + X2 Z1)^2, xa = xd·za + t·u.
/// Same operation order and lazy-reduction fusions as the scalar
/// ladder_add, so results are bit-identical lane by lane.
void ladder_add_lanes(const LaneBatch& xd, const LaneBatch& x1,
                      const LaneBatch& z1, const LaneBatch& x2,
                      const LaneBatch& z2, LaneBatch& xa, LaneBatch& za,
                      LaneLadderScratch& scr);

/// Lane form of ladder_double: x3 = X^4 + b Z^4, z3 = X^2 Z^2.
void ladder_double_lanes(const LaneBatch& b, const LaneBatch& x,
                         const LaneBatch& z, LaneBatch& x3, LaneBatch& z3,
                         LaneLadderScratch& scr);

struct BatchLadderOptions {
  /// Per-lane Z-randomizers (n pairs; the §7 randomized-projective-
  /// coordinates countermeasure), or nullptr for the unrandomized ladder.
  const std::pair<Fe, Fe>* randomizers = nullptr;
  /// Called after every iteration with the lockstep register state
  /// (bit_index counts down, exactly like LadderObservation::bit_index).
  std::function<void(std::size_t bit_index, const LadderLanes&)> observer;
};

/// All buffers one batched ladder needs, reusable call to call: the
/// campaign engine keeps one per worker thread and runs thousands of
/// trace blocks through it without touching the allocator.
struct LadderManyWorkspace {
  LadderLanes s;
  LaneLadderScratch scr;
  LaneBatch b_lanes, xd, xa, za, xdbl, zdbl, rand_lanes;
  std::vector<Scalar> padded;
  std::vector<std::uint8_t> choices;
  void resize(std::size_t n);
};

/// Run n independent ladders (ks[i], ps[i]) in lockstep; returns the raw
/// projective accumulators per lane (pair with recover_from_ladder_batch
/// for affine outputs). Preconditions per lane as montgomery_ladder_raw:
/// ps[i] affine with x != 0; nonzero randomizers when provided.
std::vector<LadderState> ladder_many(const Curve& curve, const Scalar* ks,
                                     const Point* ps, std::size_t n,
                                     const BatchLadderOptions& options = {});

/// Allocation-reusing form: writes the n raw states to `out`.
void ladder_many_into(const Curve& curve, const Scalar* ks, const Point* ps,
                      std::size_t n, const BatchLadderOptions& options,
                      LadderManyWorkspace& ws, LadderState* out);

/// Wide fixed-length form (the lane face of the scalar-blinding
/// countermeasure): every lane starts from ladder_zero_state and steps
/// exactly `iterations` bits of its WideScalar, leading zeros included —
/// the lockstep mirror of montgomery_ladder_fixed_raw, bit-identical to
/// it lane by lane (observations included). Preconditions per lane:
/// ks[i] < 2^iterations, ps[i] affine with x != 0.
void ladder_many_wide_into(const Curve& curve, const WideScalar* ks,
                           std::size_t iterations, const Point* ps,
                           std::size_t n, const BatchLadderOptions& options,
                           LadderManyWorkspace& ws, LadderState* out);

}  // namespace medsec::ecc
