#include "ecc/koblitz.h"

#include "ecc/fixed_base.h"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace medsec::ecc {

namespace {

/// Minimal signed integer on top of the unsigned Scalar: the tau-adic
/// expansion walks (a + b*tau) with a, b of either sign but magnitude
/// bounded by the original scalar, so U192 magnitudes suffice.
struct Signed {
  bool neg = false;
  Scalar mag;

  bool is_zero() const { return mag.is_zero(); }
  bool is_even() const { return !mag.bit(0); }

  /// Low bits as a signed residue helper: value mod 2^w in [0, 2^w).
  unsigned mod_pow2(unsigned w) const {
    const unsigned mask = (1u << w) - 1u;
    const unsigned m = static_cast<unsigned>(mag.limb(0)) & mask;
    if (!neg || m == 0) return m;
    return (1u << w) - m;  // (-mag) mod 2^w
  }

  Signed half() const {  // exact division by 2 (precondition: even)
    return Signed{neg, mag >> 1};
  }
  Signed negated() const { return Signed{!neg && !mag.is_zero(), mag}; }

  static Signed add(const Signed& x, const Signed& y) {
    if (x.neg == y.neg) {
      Scalar m = x.mag;
      m.add_in_place(y.mag);
      return Signed{x.neg && !m.is_zero(), m};
    }
    // Opposite signs: subtract smaller magnitude from larger.
    if (x.mag >= y.mag) {
      Scalar m = x.mag;
      m.sub_in_place(y.mag);
      return Signed{x.neg && !m.is_zero(), m};
    }
    Scalar m = y.mag;
    m.sub_in_place(x.mag);
    return Signed{y.neg, m};
  }

  static Signed from_int(int v) {
    return Signed{v < 0, Scalar{static_cast<std::uint64_t>(v < 0 ? -v : v)}};
  }
};

/// The even solution t_w of t^2 - mu*t + 2 == 0 (mod 2^w): tau == t_w under
/// the ring isomorphism Z[tau]/(tau^w) ~ Z/2^w, so (a + b*t_w) mod 2^w
/// decides divisibility of a + b*tau by powers of tau. w = 2 gives t = 2,
/// i.e. the classic "(a - 2b) mods 4" TNAF digit rule.
unsigned tau_modular_image(int mu, unsigned w) {
  const unsigned modulus = 1u << w;
  for (unsigned t = 0; t < modulus; t += 2) {
    const unsigned v = (t * t + modulus - (mu == 1 ? t : modulus - t) + 2u) &
                       (modulus - 1u);
    if (v == 0) return t;
  }
  throw std::logic_error("tau_modular_image: no root (unreachable)");
}

}  // namespace

std::vector<int> tau_naf_digits(const Scalar& k, int mu) {
  return tau_naf_window_digits(k, mu, 2);
}

std::vector<int> tau_naf_window_digits(const Scalar& k, int mu,
                                       unsigned width) {
  if (mu != 1 && mu != -1)
    throw std::invalid_argument("tau_naf_digits: mu must be +-1");
  // Width is capped at 5: the integer-digit expansion provably terminates
  // for w in [2, 5] (exhaustive small-state sweep + norm contraction), but
  // cycles for w = 6. Larger windows would need Solinas' element digits
  // alpha_u = u mods tau^w.
  if (width < 2 || width > 5)
    throw std::invalid_argument("tau_naf_window_digits: width in [2, 5]");

  const unsigned tw = tau_modular_image(mu, width);
  const unsigned modulus = 1u << width;
  const int half = 1 << (width - 1);

  // Walk a + b*tau, emitting a digit and dividing by tau:
  //   u = 0                              if a even
  //   u = (a + b*t_w) mods 2^w           if a odd (odd u, |u| < 2^(w-1);
  //                                       forces the next w-1 digits zero)
  //   a <- a - u;  (a, b) <- (b + mu*(a/2), -(a/2))
  std::vector<int> out;
  Signed a{false, k};
  Signed b;  // 0
  // Expansion length is ~2 * 163 digits; the cap is a non-termination
  // canary, not a tuning knob.
  const std::size_t max_digits = 4 * Scalar::kBits + 64;
  while (!a.is_zero() || !b.is_zero()) {
    int u = 0;
    if (!a.is_even()) {
      const unsigned r =
          (a.mod_pow2(width) + b.mod_pow2(width) * tw) & (modulus - 1u);
      u = static_cast<int>(r) >= half ? static_cast<int>(r) -
                                            static_cast<int>(modulus)
                                      : static_cast<int>(r);
      a = Signed::add(a, Signed::from_int(-u));
    }
    out.push_back(u);
    if (out.size() > max_digits)
      throw std::logic_error("tau_naf_window_digits: expansion diverged");
    const Signed half_a = a.half();
    const Signed new_b = half_a.negated();
    a = Signed::add(b, mu == 1 ? half_a : half_a.negated());
    b = new_b;
  }
  return out;
}

TauNafPrecomp::TauNafPrecomp(const Curve& curve, const Point& p,
                             unsigned w)
    : width(w), base(p) {
  if (w < 2 || w > 5)
    throw std::invalid_argument("TauNafPrecomp: width in [2, 5]");
  odd.resize(std::size_t{1} << (w - 2));
  odd[0] = p;
  const Point p2 = curve.dbl(p);
  for (std::size_t i = 1; i < odd.size(); ++i)
    odd[i] = curve.add(odd[i - 1], p2);
}

Point tau_naf_mult(const Curve& curve, const Scalar& k, const Point& p,
                   MultStats* stats) {
  if (p.infinity) return p;
  return tau_naf_mult(curve, k, TauNafPrecomp(curve, p, 4), stats);
}

Point tau_naf_mult(const Curve& curve, const Scalar& k,
                   const TauNafPrecomp& precomp, MultStats* stats) {
  const Point& p = precomp.base;
  if (p.infinity) return p;
  const int mu = curve.frobenius_trace_mu();
  const std::vector<int> digits =
      tau_naf_window_digits(k.mod(curve.order()), mu, precomp.width);
  if (stats) stats->op_pattern.reserve(stats->op_pattern.size() +
                                       digits.size());

  // Horner over tau, most significant digit first:
  //   Q <- tau(Q); Q <- Q +- u*P (precomputed) when the digit is nonzero.
  Point q = Point::at_infinity();
  for (std::size_t i = digits.size(); i-- > 0;) {
    q = curve.frobenius(q);
    if (stats) ++stats->op_slots;  // Frobenius: 2 squarings, near-free
    const int d = digits[i];
    if (d != 0) {
      const Point& m = precomp.odd[static_cast<std::size_t>(
          ((d > 0 ? d : -d) - 1) / 2)];
      q = curve.add(q, d > 0 ? m : curve.negate(m));
      if (stats) {
        ++stats->point_adds;
        ++stats->op_slots;
      }
    }
    if (stats) stats->op_pattern.push_back(d != 0 ? 1 : 0);
  }
  return q;
}

const TauNafPrecomp& generator_tau_precomp(const Curve& curve) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<TauNafPrecomp>> cache;
  const std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[detail::curve_cache_key(curve)];
  if (!slot)
    slot = std::make_unique<TauNafPrecomp>(curve, curve.base_point(), 4u);
  return *slot;
}

}  // namespace medsec::ecc
