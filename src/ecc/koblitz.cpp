#include "ecc/koblitz.h"

#include <stdexcept>

namespace medsec::ecc {

namespace {

/// Minimal signed integer on top of the unsigned Scalar: the tau-adic
/// expansion walks (a + b*tau) with a, b of either sign but magnitude
/// bounded by the original scalar, so U192 magnitudes suffice.
struct Signed {
  bool neg = false;
  Scalar mag;

  bool is_zero() const { return mag.is_zero(); }
  bool is_even() const { return !mag.bit(0); }

  /// Low two bits as a signed residue helper: value mod 4 in [0, 4).
  unsigned mod4() const {
    const unsigned m = static_cast<unsigned>(mag.limb(0) & 3u);
    if (!neg || m == 0) return m;
    return 4u - m;  // (-mag) mod 4
  }
  unsigned mod2() const { return static_cast<unsigned>(mag.limb(0) & 1u); }

  Signed half() const {  // exact division by 2 (precondition: even)
    return Signed{neg, mag >> 1};
  }
  Signed negated() const { return Signed{!neg && !mag.is_zero(), mag}; }

  static Signed add(const Signed& x, const Signed& y) {
    if (x.neg == y.neg) {
      Scalar m = x.mag;
      m.add_in_place(y.mag);
      return Signed{x.neg && !m.is_zero(), m};
    }
    // Opposite signs: subtract smaller magnitude from larger.
    if (x.mag >= y.mag) {
      Scalar m = x.mag;
      m.sub_in_place(y.mag);
      return Signed{x.neg && !m.is_zero(), m};
    }
    Scalar m = y.mag;
    m.sub_in_place(x.mag);
    return Signed{y.neg, m};
  }

  static Signed from_int(int v) {
    return Signed{v < 0, Scalar{static_cast<std::uint64_t>(v < 0 ? -v : v)}};
  }
};

}  // namespace

std::vector<int> tau_naf_digits(const Scalar& k, int mu) {
  if (mu != 1 && mu != -1)
    throw std::invalid_argument("tau_naf_digits: mu must be +-1");

  // Walk a + b*tau, emitting the NAF digit and dividing by tau:
  //   u = 0                      if a even
  //   u = (a - 2b) mods 4        if a odd   (forces next digit zero)
  //   a <- a - u;  (a, b) <- (b + mu*(a/2), -(a/2))
  std::vector<int> out;
  Signed a{false, k};
  Signed b;  // 0
  while (!a.is_zero() || !b.is_zero()) {
    int u = 0;
    if (!a.is_even()) {
      // r = (a - 2b) mod 4, signed NAF digit: +1 if r == 1, -1 if r == 3.
      const unsigned r =
          (a.mod4() + 4u - ((2u * b.mod2()) & 3u)) & 3u;
      u = r == 1 ? 1 : -1;
      a = Signed::add(a, Signed::from_int(-u));
    }
    out.push_back(u);
    const Signed half = a.half();
    const Signed new_b = half.negated();
    a = Signed::add(b, mu == 1 ? half : half.negated());
    b = new_b;
  }
  return out;
}

Point tau_naf_mult(const Curve& curve, const Scalar& k, const Point& p,
                   MultStats* stats) {
  if (p.infinity) return p;
  const int mu = curve.frobenius_trace_mu();
  const std::vector<int> digits = tau_naf_digits(k.mod(curve.order()), mu);

  // Horner over tau, most significant digit first:
  //   Q <- tau(Q); Q <- Q +- P when the digit is nonzero.
  Point q = Point::at_infinity();
  const Point neg_p = curve.negate(p);
  for (std::size_t i = digits.size(); i-- > 0;) {
    q = curve.frobenius(q);
    if (stats) ++stats->op_slots;  // Frobenius: 2 squarings, near-free
    const int d = digits[i];
    if (d != 0) {
      q = curve.add(q, d > 0 ? p : neg_p);
      if (stats) {
        ++stats->point_adds;
        ++stats->op_slots;
      }
    }
    if (stats) stats->op_pattern.push_back(d != 0 ? 1 : 0);
  }
  return q;
}

}  // namespace medsec::ecc
