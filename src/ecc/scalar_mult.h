// scalar_mult.h — scalar multiplication with selectable algorithm and
// instrumentation.
//
// The paper's design story needs a *leaky baseline* next to the protected
// ladder: the classic double-and-add executes a point addition only for
// key bits that are 1, so both its running time (timing attack, §7) and its
// operation sequence (SPA) are key-dependent. kMontgomeryLadder fixes the
// operation schedule; kLadderRpc adds the DPA countermeasure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/curve.h"
#include "ecc/ladder.h"

namespace medsec::ecc {

enum class MultAlgorithm {
  kDoubleAndAdd,      ///< unprotected baseline (timing + SPA leaky)
  kWnaf,              ///< width-4 NAF: faster than D&A, still SPA-leaky
  kTauNaf,            ///< Frobenius-based (Koblitz only): no doublings
  kMontgomeryLadder,  ///< constant operation schedule
  kLadderRpc,         ///< ladder + randomized projective coordinates
};

/// Per-execution instrumentation filled in by scalar_mult.
struct MultStats {
  std::size_t point_doubles = 0;
  std::size_t point_adds = 0;
  std::size_t ladder_iterations = 0;
  /// Abstract "operation slots": the architecture-level proxy for runtime.
  /// For double-and-add each double/add is one slot; for the ladder each
  /// iteration is one fixed-size slot.
  std::size_t op_slots = 0;
  /// Sequence of operations as executed (1 = add performed after double),
  /// the SPA-visible schedule for double-and-add.
  std::vector<std::uint8_t> op_pattern;
};

struct MultOptions {
  MultAlgorithm algorithm = MultAlgorithm::kMontgomeryLadder;
  rng::RandomSource* rng = nullptr;  ///< required for kLadderRpc
  LadderObserver observer;           ///< ladder side-channel hook
  MultStats* stats = nullptr;        ///< optional instrumentation sink
};

/// Compute k·P with the selected algorithm. Validates nothing: callers at
/// trust boundaries must run Curve::validate_subgroup_point first.
Point scalar_mult(const Curve& curve, const Scalar& k, const Point& p,
                  const MultOptions& options = {});

/// One term of a multi-scalar multiplication.
struct MsmTerm {
  Scalar k;
  Point p;
};

/// Interleaved (Straus/Shamir) multi-scalar multiplication:
/// sum_i terms[i].k * terms[i].p. All terms share ONE doubling chain in
/// López–Dahab projective coordinates; each term contributes only its wNAF
/// additions, and every per-term precomputed odd multiple across the whole
/// call is normalized to affine with a shared Gf163::batch_inv. For n
/// full-width terms this costs ~163 doublings + n*(163/5 + 4) additions +
/// 2 field inversions total, against n*(163 + 81) operations for n
/// independent double-and-add multiplications.
///
/// Variable-time (verifier/reader-side only — never feed it a secret
/// scalar). Zero scalars and infinity points contribute nothing. Like
/// scalar_mult, it validates nothing: callers at trust boundaries must run
/// Curve::validate_subgroup_point on each point first.
Point multi_scalar_mult(const Curve& curve, std::span<const MsmTerm> terms);

/// Double-scalar convenience (Shamir's trick): k1·p1 + k2·p2 with one
/// shared doubling chain — the verifier-equation workhorse (Schnorr
/// s·P − e·X, Peeters–Hermans (s−d)·P − e·R).
Point double_scalar_mult(const Curve& curve, const Scalar& k1, const Point& p1,
                         const Scalar& k2, const Point& p2);

/// Width-w non-adjacent form of k: digits are zero or odd in
/// (-2^(w-1), 2^(w-1)), no two consecutive digits nonzero. Returned
/// little-endian (digit 0 = least significant). Exposed for tests and the
/// SPA discussion: the *positions* of nonzero digits are key-dependent,
/// which is exactly why the ladder wins on the device.
std::vector<int> wnaf_digits(const Scalar& k, unsigned width);

}  // namespace medsec::ecc
