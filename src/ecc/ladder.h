// ladder.h — Montgomery powering ladder for binary curves (López–Dahab
// x-only formulas), the paper's Algorithm 1.
//
// The paper (§4) chooses MPL because it (a) runs in a fixed number of
// iterations regardless of the key, defeating timing analysis and SPA,
// (b) needs only the x coordinate — six 163-bit registers for the whole
// point multiplication — and (c) composes with randomized projective
// coordinates ("R ← (xr, r)") to defeat DPA.
//
// This file is the *algorithmic* model; the cycle-accurate version the
// side-channel experiments drive lives in hw/coprocessor.h and executes the
// same formulas from microcode, cross-checked against this one.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ecc/curve.h"
#include "ecc/ladder_core.h"
#include "rng/random_source.h"

namespace medsec::ecc {

/// Widened scalar for the blinded ladder: k' = k + r·n does not fit the
/// 192-bit Scalar once the 32/64-bit blind r is folded in.
using WideScalar = bigint::U256;

/// Snapshot of the ladder state after one iteration, delivered to an
/// observer. This is what the (modeled) adversary's probe sees of the
/// internal data flow; the trace simulator leaks Hamming distances of
/// these register updates.
struct LadderObservation {
  std::size_t bit_index;  ///< which key bit was just processed
  int key_bit;            ///< its value
  Fe x1, z1;              ///< "low" accumulator (k_high · P)
  Fe x2, z2;              ///< "high" accumulator ((k_high + 1) · P)
};

using LadderObserver = std::function<void(const LadderObservation&)>;

struct LadderOptions {
  /// Randomized projective coordinates (the paper's DPA countermeasure).
  bool randomize_z = false;
  /// Entropy for the randomization; required when randomize_z is set.
  rng::RandomSource* rng = nullptr;
  /// Per-iteration observer (side-channel instrumentation hook).
  LadderObserver observer;
  /// White-box evaluation: if set, the Z-randomizers are taken from this
  /// fixed list instead of the RNG ("the countermeasure is enabled, but the
  /// randomness is known" scenario of §7). Two nonzero field elements.
  std::optional<std::pair<Fe, Fe>> known_randomizers;
};

/// Fresh uniformly random nonzero field element — the Z-randomizer /
/// blinding-mask sampling discipline (three raw limbs, reject zero),
/// shared by every countermeasure layer so the fixed-draw-order
/// determinism contract has exactly one implementation.
Fe random_nonzero_fe(rng::RandomSource& rng);

/// x-only differential addition: returns (X3, Z3) with
/// Z3 = (X1 Z2 + X2 Z1)^2, X3 = x_diff * Z3 + (X1 Z2)(X2 Z1).
void ladder_add(const Fe& xd, const Fe& x1, const Fe& z1, const Fe& x2,
                const Fe& z2, Fe& x3, Fe& z3);

/// x-only doubling: X3 = X^4 + b Z^4, Z3 = X^2 Z^2.
void ladder_double(const Fe& b, const Fe& x, const Fe& z, Fe& x3, Fe& z3);

/// The ladder's working state: (x1 : z1) = k_high·P, (x2 : z2) = (k_high+1)·P.
/// The production instantiation of the templated core in ladder_core.h —
/// the constant-time audit harness instantiates the same core with its
/// taint-tracking field element.
using LadderState = LadderStateT<Fe>;

/// Unrandomized initial state for base-point x (projective 1-coordinates).
LadderState ladder_initial_state(const Fe& b, const Fe& x);

/// §7 projective randomization of a ladder state: (x1, z1) *= l1,
/// (x2, z2) *= l2. The one implementation of this arithmetic — victim
/// paths and the white-box attacker's state reconstruction must match it
/// exactly, so nobody re-inlines the four multiplications.
void randomize_ladder_state(LadderState& s, const Fe& l1, const Fe& l2);

/// Neutral start state (lo, hi) = (O, P) = ((1 : 0), (x : 1)): the ladder
/// invariant hi − lo = P holds with prefix value 0, so a ladder started
/// here correctly processes scalars with *leading zero bits*. This is what
/// lets the blinded ladder run a fixed, key-independent iteration count
/// even though bitlen(k + r·n) varies with r.
LadderState ladder_zero_state(const Fe& x);

/// One ladder iteration for key bit `bit` (cswap / add+double / cswap).
/// This exact function is shared by the victim (montgomery_ladder) and by
/// the modeled DPA adversary's hypothesis engine, so predictions and
/// reality can never drift apart by implementation detail.
void ladder_iteration(const Fe& b, const Fe& x_base, LadderState& s,
                      std::uint64_t bit);

/// Montgomery-ladder scalar multiplication with y-recovery.
/// Handles k >= order by reduction; returns infinity for k == 0 (mod n).
/// Precondition: p is an affine point on the curve with x != 0 (points of
/// order 2 are rejected by validate_subgroup_point upstream).
Point montgomery_ladder(const Curve& curve, const Scalar& k, const Point& p,
                        const LadderOptions& options = {});

/// The ladder without the inversion-heavy affine recovery: returns the raw
/// projective accumulators. Pair with recover_from_ladder (one point) or
/// recover_from_ladder_batch (many points, one shared inversion) so
/// protocol-level callers can amortize the 162-squaring Itoh–Tsujii
/// inversion across several point multiplications.
/// Precondition: p is affine (not infinity) with x != 0.
LadderState montgomery_ladder_raw(const Curve& curve, const Scalar& k,
                                  const Point& p,
                                  const LadderOptions& options = {});

/// Fixed-length wide-scalar ladder (the widened entry behind the
/// scalar-blinding countermeasure): starts from ladder_zero_state and
/// processes exactly `iterations` bits of k, MSB (bit iterations-1) first,
/// leading zeros included. Correct for any k < 2^iterations; the result
/// equals (k mod order)·P. The iteration count — and therefore the trace
/// length an adversary sees — is a configuration constant, never a
/// function of the key or the blind. Supports the same LadderOptions
/// (randomization, observer) as montgomery_ladder_raw; observations are
/// delivered with bit_index == the processed bit position.
/// Precondition: p is affine (not infinity) with x != 0.
LadderState montgomery_ladder_fixed_raw(const Curve& curve,
                                        const WideScalar& k,
                                        std::size_t iterations, const Point& p,
                                        const LadderOptions& options = {});

/// Affine form of the fixed-length ladder (recover_from_ladder applied to
/// the raw accumulators).
Point montgomery_ladder_fixed(const Curve& curve, const WideScalar& k,
                              std::size_t iterations, const Point& p,
                              const LadderOptions& options = {});

/// y-recovery after an x-only ladder (López–Dahab): from the affine input
/// point P and the two projective accumulators (X1 : Z1) = kP and
/// (X2 : Z2) = (k+1)P, reconstruct affine kP. This is the key-independent
/// "insecure zone" step the controller runs on the co-processor's outputs
/// (§5's secure/insecure partition). Throws std::logic_error if the
/// recovered point is off-curve (fault-detection canary).
Point recover_from_ladder(const Curve& curve, const Point& p, const Fe& x1,
                          const Fe& z1, const Fe& x2, const Fe& z2);

/// Batch y-recovery: converts many raw ladder outputs to affine points with
/// Montgomery's-trick batch inversion — one field inversion for the whole
/// batch instead of one (previously two) per point. bases[i] is the affine
/// input point of states[i]. Throws std::logic_error if any recovered point
/// is off-curve (same fault canary as recover_from_ladder).
std::vector<Point> recover_from_ladder_batch(
    const Curve& curve, const std::vector<Point>& bases,
    const std::vector<LadderState>& states);

/// Pad a scalar to a fixed bit length of order.bit_length() + 1 by adding
/// the group order once or twice: k and the result act identically on any
/// point of that order, but the bit length (and hence the ladder's
/// iteration count) becomes a key-independent curve constant.
Scalar constant_length_scalar(const Curve& curve, const Scalar& k);

/// Field-operation budget of one ladder iteration (used by the
/// architecture-level model to build the microcode schedule):
/// 6 multiplications, 5 squarings, 3 additions.
struct LadderIterationCost {
  static constexpr int kMultiplications = 6;
  static constexpr int kSquarings = 5;
  static constexpr int kAdditions = 3;
};

}  // namespace medsec::ecc
