// ladder.h — Montgomery powering ladder for binary curves (López–Dahab
// x-only formulas), the paper's Algorithm 1.
//
// The paper (§4) chooses MPL because it (a) runs in a fixed number of
// iterations regardless of the key, defeating timing analysis and SPA,
// (b) needs only the x coordinate — six 163-bit registers for the whole
// point multiplication — and (c) composes with randomized projective
// coordinates ("R ← (xr, r)") to defeat DPA.
//
// This file is the *algorithmic* model; the cycle-accurate version the
// side-channel experiments drive lives in hw/coprocessor.h and executes the
// same formulas from microcode, cross-checked against this one.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ecc/curve.h"
#include "rng/random_source.h"

namespace medsec::ecc {

/// Snapshot of the ladder state after one iteration, delivered to an
/// observer. This is what the (modeled) adversary's probe sees of the
/// internal data flow; the trace simulator leaks Hamming distances of
/// these register updates.
struct LadderObservation {
  std::size_t bit_index;  ///< which key bit was just processed
  int key_bit;            ///< its value
  Fe x1, z1;              ///< "low" accumulator (k_high · P)
  Fe x2, z2;              ///< "high" accumulator ((k_high + 1) · P)
};

using LadderObserver = std::function<void(const LadderObservation&)>;

struct LadderOptions {
  /// Randomized projective coordinates (the paper's DPA countermeasure).
  bool randomize_z = false;
  /// Entropy for the randomization; required when randomize_z is set.
  rng::RandomSource* rng = nullptr;
  /// Per-iteration observer (side-channel instrumentation hook).
  LadderObserver observer;
  /// White-box evaluation: if set, the Z-randomizers are taken from this
  /// fixed list instead of the RNG ("the countermeasure is enabled, but the
  /// randomness is known" scenario of §7). Two nonzero field elements.
  std::optional<std::pair<Fe, Fe>> known_randomizers;
};

/// x-only differential addition: returns (X3, Z3) with
/// Z3 = (X1 Z2 + X2 Z1)^2, X3 = x_diff * Z3 + (X1 Z2)(X2 Z1).
void ladder_add(const Fe& xd, const Fe& x1, const Fe& z1, const Fe& x2,
                const Fe& z2, Fe& x3, Fe& z3);

/// x-only doubling: X3 = X^4 + b Z^4, Z3 = X^2 Z^2.
void ladder_double(const Fe& b, const Fe& x, const Fe& z, Fe& x3, Fe& z3);

/// The ladder's working state: (x1 : z1) = k_high·P, (x2 : z2) = (k_high+1)·P.
struct LadderState {
  Fe x1, z1, x2, z2;
};

/// Unrandomized initial state for base-point x (projective 1-coordinates).
LadderState ladder_initial_state(const Fe& b, const Fe& x);

/// One ladder iteration for key bit `bit` (cswap / add+double / cswap).
/// This exact function is shared by the victim (montgomery_ladder) and by
/// the modeled DPA adversary's hypothesis engine, so predictions and
/// reality can never drift apart by implementation detail.
void ladder_iteration(const Fe& b, const Fe& x_base, LadderState& s,
                      std::uint64_t bit);

/// Montgomery-ladder scalar multiplication with y-recovery.
/// Handles k >= order by reduction; returns infinity for k == 0 (mod n).
/// Precondition: p is an affine point on the curve with x != 0 (points of
/// order 2 are rejected by validate_subgroup_point upstream).
Point montgomery_ladder(const Curve& curve, const Scalar& k, const Point& p,
                        const LadderOptions& options = {});

/// The ladder without the inversion-heavy affine recovery: returns the raw
/// projective accumulators. Pair with recover_from_ladder (one point) or
/// recover_from_ladder_batch (many points, one shared inversion) so
/// protocol-level callers can amortize the 162-squaring Itoh–Tsujii
/// inversion across several point multiplications.
/// Precondition: p is affine (not infinity) with x != 0.
LadderState montgomery_ladder_raw(const Curve& curve, const Scalar& k,
                                  const Point& p,
                                  const LadderOptions& options = {});

/// y-recovery after an x-only ladder (López–Dahab): from the affine input
/// point P and the two projective accumulators (X1 : Z1) = kP and
/// (X2 : Z2) = (k+1)P, reconstruct affine kP. This is the key-independent
/// "insecure zone" step the controller runs on the co-processor's outputs
/// (§5's secure/insecure partition). Throws std::logic_error if the
/// recovered point is off-curve (fault-detection canary).
Point recover_from_ladder(const Curve& curve, const Point& p, const Fe& x1,
                          const Fe& z1, const Fe& x2, const Fe& z2);

/// Batch y-recovery: converts many raw ladder outputs to affine points with
/// Montgomery's-trick batch inversion — one field inversion for the whole
/// batch instead of one (previously two) per point. bases[i] is the affine
/// input point of states[i]. Throws std::logic_error if any recovered point
/// is off-curve (same fault canary as recover_from_ladder).
std::vector<Point> recover_from_ladder_batch(
    const Curve& curve, const std::vector<Point>& bases,
    const std::vector<LadderState>& states);

/// Pad a scalar to a fixed bit length of order.bit_length() + 1 by adding
/// the group order once or twice: k and the result act identically on any
/// point of that order, but the bit length (and hence the ladder's
/// iteration count) becomes a key-independent curve constant.
Scalar constant_length_scalar(const Curve& curve, const Scalar& k);

/// Field-operation budget of one ladder iteration (used by the
/// architecture-level model to build the microcode schedule):
/// 6 multiplications, 5 squarings, 3 additions.
struct LadderIterationCost {
  static constexpr int kMultiplications = 6;
  static constexpr int kSquarings = 5;
  static constexpr int kAdditions = 3;
};

}  // namespace medsec::ecc
