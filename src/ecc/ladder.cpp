#include "ecc/ladder.h"

#include <stdexcept>

namespace medsec::ecc {

// The arithmetic below lives in ladder_core.h, templated over the field
// type so the constant-time audit build (ctaudit::TaintFe) runs the same
// formulas; these wrappers pin the production Fe instantiation behind the
// historical signatures.

void ladder_add(const Fe& xd, const Fe& x1, const Fe& z1, const Fe& x2,
                const Fe& z2, Fe& x3, Fe& z3) {
  ladder_add_t(xd, x1, z1, x2, z2, x3, z3);
}

void ladder_double(const Fe& b, const Fe& x, const Fe& z, Fe& x3, Fe& z3) {
  ladder_double_t(b, x, z, x3, z3);
}

Fe random_nonzero_fe(rng::RandomSource& rng) {
  for (;;) {
    bigint::U192 v;
    v.set_limb(0, rng.next_u64());
    v.set_limb(1, rng.next_u64());
    v.set_limb(2, rng.next_u64());
    const Fe fe = Fe::from_bits(v);
    if (!fe.is_zero()) return fe;
  }
}

namespace {

/// Shared recovery arithmetic once the two inverses (1/Z1 and
/// 1/(x·Z1·Z2)) are in hand — the single-point path computes them with a
/// joint two-element inversion, the batch path with Gf163::batch_inv.
/// z1z2 is the already-computed Z1·Z2 from the caller's denominator.
Point recover_affine(const Curve& curve, const Point& p, const Fe& x1,
                     const Fe& z1, const Fe& x2, const Fe& z2,
                     const Fe& z1z2, const Fe& z1_inv, const Fe& den_inv) {
  const Fe x = p.x, y = p.y;
  const Fe xa = Fe::mul(x1, z1_inv);  // affine x(kP)

  const Fe t2 = x1 + Fe::mul(x, z1);  // X1 + x Z1
  const Fe t4 = x2 + Fe::mul(x, z2);  // X2 + x Z2
  const Fe num = Fe::mul_add_mul(t2, t4, Fe::sqr(x) + y, z1z2);
  const Fe ya = Fe::mul(Fe::mul(x + xa, num), den_inv) + y;

  const Point out = Point::affine(xa, ya);
  // Fault-detection canary (cheap version of the paper's point-validation
  // practice): the recovered point must satisfy the curve equation.
  if (!curve.is_on_curve(out))
    throw std::logic_error("montgomery_ladder: recovered point off-curve");
  return out;
}

}  // namespace

Point recover_from_ladder(const Curve& curve, const Point& p, const Fe& x1,
                          const Fe& z1, const Fe& x2, const Fe& z2) {
  if (z1.is_zero()) return Point::at_infinity();
  if (z2.is_zero()) return curve.negate(p);  // kP = -P

  // Joint inversion of Z1 and x·Z1·Z2 (Montgomery's trick): one
  // Itoh–Tsujii inversion instead of two.
  const Fe z1z2 = Fe::mul(z1, z2);
  const Fe den = Fe::mul(p.x, z1z2);
  const Fe joint = Fe::inv(Fe::mul(z1, den));
  const Fe z1_inv = Fe::mul(joint, den);
  const Fe den_inv = Fe::mul(joint, z1);
  return recover_affine(curve, p, x1, z1, x2, z2, z1z2, z1_inv, den_inv);
}

std::vector<Point> recover_from_ladder_batch(
    const Curve& curve, const std::vector<Point>& bases,
    const std::vector<LadderState>& states) {
  if (bases.size() != states.size())
    throw std::invalid_argument(
        "recover_from_ladder_batch: bases/states size mismatch");
  const std::size_t n = states.size();
  // Two denominators per point: [2i] = Z1, [2i+1] = x·Z1·Z2. Degenerate
  // accumulators stay zero, which batch_inv skips. Z1·Z2 is kept: the
  // recovery formula needs it again.
  std::vector<Fe> denoms(2 * n);
  std::vector<Fe> z1z2s(n);
  for (std::size_t i = 0; i < n; ++i) {
    const LadderState& s = states[i];
    if (s.z1.is_zero() || s.z2.is_zero()) continue;
    z1z2s[i] = Fe::mul(s.z1, s.z2);
    denoms[2 * i] = s.z1;
    denoms[2 * i + 1] = Fe::mul(bases[i].x, z1z2s[i]);
  }
  Fe::batch_inv(denoms.data(), denoms.size());

  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const LadderState& s = states[i];
    if (s.z1.is_zero()) {
      out.push_back(Point::at_infinity());
    } else if (s.z2.is_zero()) {
      out.push_back(curve.negate(bases[i]));
    } else {
      out.push_back(recover_affine(curve, bases[i], s.x1, s.z1, s.x2, s.z2,
                                   z1z2s[i], denoms[2 * i],
                                   denoms[2 * i + 1]));
    }
  }
  return out;
}

Scalar constant_length_scalar(const Curve& curve, const Scalar& k0) {
  Scalar k = k0.mod(curve.order()) + curve.order();
  if (k.bit_length() == curve.order().bit_length()) k = k + curve.order();
  return k;
}

LadderState ladder_initial_state(const Fe& b, const Fe& x) {
  // lo = P = (x : 1), hi = 2P = (x^4 + b : x^2).
  return ladder_initial_state_t(b, x);
}

LadderState ladder_zero_state(const Fe& x) {
  // lo = O = (1 : 0), hi = P = (x : 1).
  return ladder_zero_state_t(x);
}

void randomize_ladder_state(LadderState& s, const Fe& l1, const Fe& l2) {
  s.x1 = Fe::mul(s.x1, l1);
  s.z1 = Fe::mul(s.z1, l1);
  s.x2 = Fe::mul(s.x2, l2);
  s.z2 = Fe::mul(s.z2, l2);
}

void ladder_iteration(const Fe& b, const Fe& x_base, LadderState& s,
                      std::uint64_t bit) {
  ladder_iteration_t(b, x_base, s, bit);
}

namespace {

/// §7 projective randomization of a fresh ladder state: (x1, z1) *= l1,
/// (x2, z2) *= l2 with the randomizers drawn from the RNG or, in the
/// white-box scenario, taken from options.known_randomizers. Shared by
/// the classic and the fixed-length (blinded) entries.
void randomize_state(LadderState& s, const LadderOptions& options) {
  if (!options.randomize_z && !options.known_randomizers) return;
  Fe l1, l2;
  if (options.known_randomizers) {
    l1 = options.known_randomizers->first;
    l2 = options.known_randomizers->second;
    if (l1.is_zero() || l2.is_zero())
      throw std::invalid_argument("montgomery_ladder: zero randomizer");
  } else {
    if (options.rng == nullptr)
      throw std::invalid_argument(
          "montgomery_ladder: randomize_z requires an RNG");
    l1 = random_nonzero_fe(*options.rng);
    l2 = random_nonzero_fe(*options.rng);
  }
  randomize_ladder_state(s, l1, l2);
}

void check_base_point(const Point& p) {
  if (p.infinity)
    throw std::invalid_argument("montgomery_ladder_raw: P is infinity");
  if (p.x.is_zero())
    throw std::invalid_argument("montgomery_ladder: x(P) = 0 (order-2 point)");
}

}  // namespace

LadderState montgomery_ladder_fixed_raw(const Curve& curve,
                                        const WideScalar& k,
                                        std::size_t iterations, const Point& p,
                                        const LadderOptions& options) {
  check_base_point(p);
  if (iterations < k.bit_length() || iterations > WideScalar::kBits)
    throw std::invalid_argument(
        "montgomery_ladder_fixed_raw: iteration count does not cover k");

  const Fe x = p.x;
  const Fe b = curve.b();
  LadderState s = ladder_zero_state(x);
  randomize_state(s, options);

  const bool has_observer = static_cast<bool>(options.observer);
  for (std::size_t i = iterations; i-- > 0;) {
    const std::uint64_t bit = k.bit(i) ? 1 : 0;
    ladder_iteration(b, x, s, bit);
    if (has_observer) {
      options.observer(LadderObservation{
          .bit_index = i,
          .key_bit = static_cast<int>(bit),
          .x1 = s.x1,
          .z1 = s.z1,
          .x2 = s.x2,
          .z2 = s.z2,
      });
    }
  }
  return s;
}

Point montgomery_ladder_fixed(const Curve& curve, const WideScalar& k,
                              std::size_t iterations, const Point& p,
                              const LadderOptions& options) {
  if (p.infinity) return Point::at_infinity();
  const LadderState s =
      montgomery_ladder_fixed_raw(curve, k, iterations, p, options);
  return recover_from_ladder(curve, p, s.x1, s.z1, s.x2, s.z2);
}

LadderState montgomery_ladder_raw(const Curve& curve, const Scalar& k0,
                                  const Point& p,
                                  const LadderOptions& options) {
  check_base_point(p);

  // Constant-length recoding: k + r (or k + 2r) acts identically on P but
  // has a fixed, key-independent bit length, so the iteration count is a
  // curve constant — the paper's timing-attack claim (§7).
  const Scalar k = constant_length_scalar(curve, k0);

  const Fe x = p.x;
  const Fe b = curve.b();

  LadderState s = ladder_initial_state(b, x);
  randomize_state(s, options);

  // Hoist the std::function emptiness test out of the hot loop: when no
  // observer is installed the iteration body is pure field arithmetic and
  // no LadderObservation is ever materialized.
  const bool has_observer = static_cast<bool>(options.observer);

  const std::size_t t = k.bit_length();  // == order.bit_length() + 1, always
  for (std::size_t i = t - 1; i-- > 0;) {
    const std::uint64_t bit = k.bit(i) ? 1 : 0;
    ladder_iteration(b, x, s, bit);

    if (has_observer) {
      options.observer(LadderObservation{
          .bit_index = i,
          .key_bit = static_cast<int>(bit),
          .x1 = s.x1,
          .z1 = s.z1,
          .x2 = s.x2,
          .z2 = s.z2,
      });
    }
  }

  return s;
}

Point montgomery_ladder(const Curve& curve, const Scalar& k, const Point& p,
                        const LadderOptions& options) {
  if (p.infinity) return Point::at_infinity();
  const LadderState s = montgomery_ladder_raw(curve, k, p, options);
  return recover_from_ladder(curve, p, s.x1, s.z1, s.x2, s.z2);
}

}  // namespace medsec::ecc
