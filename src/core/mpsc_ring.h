// mpsc_ring.h — bounded lock-free rings for shard mailboxes.
//
// The sharded gateway's ingress path (net.h front-end thread -> shard
// event loop) must not take a mutex per datagram: at 100k+ sessions the
// mailbox is the hottest cross-thread edge in the process. Two shapes:
//
//   * SpscRing<T> — the classic single-producer/single-consumer bounded
//     ring: one atomic head, one atomic tail, each written by exactly one
//     side, padded onto separate cache lines. push/pop are wait-free (one
//     acquire load + one release store each).
//   * MpscRing<T> — many producers into one consumer, built as one
//     SpscRing per producer rather than a CAS loop on a shared tail: each
//     producer owns its lane outright, so producers never contend with
//     each other, and the consumer drains lanes round-robin for fairness.
//
// Backpressure is explicit: try_push returns false on a full ring and the
// caller decides (the front end sheds the datagram with a kReject, never
// blocks the readiness loop). Capacities round up to a power of two so
// the index wrap is a mask, not a modulo.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace medsec::core {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

inline constexpr std::size_t ceil_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bounded wait-free single-producer/single-consumer ring. Exactly one
/// thread may call try_push and exactly one may call try_pop; which
/// threads those are may change only across a synchronization point.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(ceil_pow2(capacity < 2 ? 2 : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. False = ring full (caller sheds).
  bool try_push(T&& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    // Full when the slot one lap ahead is still unconsumed.
    if (t - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ > mask_) return false;
    }
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False = ring empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side size estimate (exact when called by the consumer with
  /// the producer quiescent).
  std::size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  // Producer-owned line: tail plus its cached view of head.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  // Consumer-owned line: head plus its cached view of tail.
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

/// Many producers, one consumer: one SpscRing lane per producer, drained
/// round-robin. A producer pushes into its own lane by index (lane
/// ownership is the caller's contract — e.g. one lane per front-end
/// thread), so the hot path has zero inter-producer contention.
template <typename T>
class MpscRing {
 public:
  MpscRing(std::size_t producers, std::size_t capacity_per_producer) {
    lanes_.reserve(producers ? producers : 1);
    for (std::size_t i = 0; i < (producers ? producers : 1); ++i)
      lanes_.push_back(
          std::make_unique<SpscRing<T>>(capacity_per_producer));
  }

  std::size_t producers() const { return lanes_.size(); }

  /// Push from producer `lane` (must be < producers(); each lane has
  /// exactly one producing thread). False = that lane is full.
  bool try_push(std::size_t lane, T&& v) {
    return lanes_[lane]->try_push(std::move(v));
  }

  /// Consumer: pop one item, scanning lanes round-robin from where the
  /// last pop left off so a chatty lane cannot starve the others.
  bool try_pop(T& out) {
    const std::size_t n = lanes_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lane = (next_lane_ + i) % n;
      if (lanes_[lane]->try_pop(out)) {
        next_lane_ = (lane + 1) % n;
        return true;
      }
    }
    return false;
  }

  /// Consumer: drain up to `limit` items into `fn`. Returns count.
  template <typename Fn>
  std::size_t drain(Fn&& fn, std::size_t limit = SIZE_MAX) {
    std::size_t n = 0;
    T item;
    while (n < limit && try_pop(item)) {
      fn(std::move(item));
      ++n;
    }
    return n;
  }

  std::size_t size_approx() const {
    std::size_t n = 0;
    for (const auto& l : lanes_) n += l->size_approx();
    return n;
  }

 private:
  std::vector<std::unique_ptr<SpscRing<T>>> lanes_;
  std::size_t next_lane_ = 0;  // consumer-owned
};

}  // namespace medsec::core
