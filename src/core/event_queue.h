// event_queue.h — a deterministic virtual-clock event scheduler.
//
// The gateway's failure model (retransmit timers, exponential backoff, link
// delays, session deadlines) is all about *time*, and timeout logic tested
// against wall-clock sleeps is both slow and flaky. Everything here runs on
// a virtual clock instead: components schedule callbacks at future cycle
// counts, and the owner pumps the queue. Two properties make chaos runs
// bit-reproducible:
//
//   * total order — events fire in (time, insertion sequence) order, so two
//     events scheduled for the same cycle fire in the order they were
//     scheduled, never in hash-map or heap-internal order;
//   * single-threaded discipline — one queue is one shard's world; the
//     campaign engine scales by running many independent shard queues on
//     the thread pool and merging results in shard order (the PR 3
//     determinism contract), never by sharing a queue across threads.
//
// The idiom follows the teesoe-style component scheduler the ROADMAP names
// for the shard event loops: a monotonic cycle counter, schedule/cancel,
// and a run loop the owner controls.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace medsec::core {

/// Virtual time unit. One "cycle" is whatever the owner says it is — the
/// gateway treats it as one radio-symbol-ish tick; only ratios matter.
using Cycle = std::uint64_t;

class EventQueue {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Cycle now() const { return now_; }
  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }
  std::uint64_t events_run() const { return events_run_; }

  /// Schedule `fn` to run `delay` cycles from now. Returns a handle that
  /// stays valid until the event fires or is cancelled.
  EventId schedule(Cycle delay, std::function<void()> fn) {
    const EventId id = next_id_++;
    heap_.push(Event{now_ + delay, id, std::move(fn)});
    ++live_;
    return id;
  }

  /// Cancel a scheduled event. Safe on already-fired or already-cancelled
  /// ids (returns false). Cancellation is lazy: the heap entry is skipped
  /// when it surfaces.
  bool cancel(EventId id) {
    if (id == kInvalidEvent) return false;
    // A fired or cancelled event's id is never reused, so membership in
    // the cancelled set is enough; the heap sweep erases it on surfacing.
    if (cancelled_.insert_unique(id)) {
      --live_;
      return true;
    }
    return false;
  }

  /// Run the earliest pending event, advancing the clock to its deadline.
  /// Returns false when nothing is pending.
  bool run_next() {
    while (!heap_.empty()) {
      if (cancelled_.erase(heap_.top().id)) {
        heap_.pop();
        continue;
      }
      // Move the event out before running: the callback may schedule new
      // events (reallocating under the heap) or cancel others.
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      --live_;
      now_ = ev.at;
      ++events_run_;
      ev.fn();
      return true;
    }
    return false;
  }

  /// Run every event with deadline <= t, then advance the clock to t.
  void run_until(Cycle t) {
    while (!heap_.empty()) {
      if (cancelled_.erase(heap_.top().id)) {
        heap_.pop();
        continue;
      }
      if (heap_.top().at > t) break;
      run_next();
    }
    if (now_ < t) now_ = t;
  }

  /// Drain the queue completely, with a safety valve against runaway
  /// event chains (a retransmit loop that never converges). Returns the
  /// number of events run; hitting `limit` leaves the rest pending.
  std::uint64_t run_all(std::uint64_t limit = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < limit && run_next()) ++n;
    return n;
  }

 private:
  struct Event {
    Cycle at;
    EventId id;
    std::function<void()> fn;
    /// Min-heap on (time, id): std::priority_queue is a max-heap, so the
    /// comparison is inverted. The id tiebreak is the determinism rule —
    /// same-cycle events fire in scheduling order.
    bool operator<(const Event& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  /// Tiny sorted-vector set for cancelled ids — cancellation is rare
  /// (mostly retransmit timers beaten by their acks) and ids are
  /// near-monotonic, so a vector beats a node-based set here.
  struct CancelSet {
    std::vector<EventId> ids;
    bool insert_unique(EventId id) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), id);
      if (it != ids.end() && *it == id) return false;
      ids.insert(it, id);
      return true;
    }
    bool erase(EventId id) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), id);
      if (it == ids.end() || *it != id) return false;
      ids.erase(it);
      return true;
    }
  };

  std::priority_queue<Event> heap_;
  CancelSet cancelled_;
  Cycle now_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEvent
  std::size_t live_ = 0;
  std::uint64_t events_run_ = 0;
};

/// Namespace-scope aliases: timer handles travel through component
/// headers (delivery.h) that shouldn't spell the owning class.
using EventId = EventQueue::EventId;
inline constexpr EventId kInvalidEvent = EventQueue::kInvalidEvent;

}  // namespace medsec::core
