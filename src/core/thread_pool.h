// thread_pool.h — the shared worker-pool substrate of the engine and
// campaign layers.
//
// Extracted from the FleetServer's private worker pool once the trace
// simulator and the streaming CPA/TVLA analysis needed the same thing: a
// fixed set of threads, a task queue, and a blocking data-parallel helper.
// Two usage patterns:
//
//   * submit() + wait_idle(): the FleetServer's message-driven mode — fire
//     one task per radio message, drain when the caller needs a barrier.
//
//   * parallel_for(): the campaign engine's mode — split [0, n) into
//     chunks, run them on the workers *and the calling thread*, return
//     when every chunk is done. The caller participates in the work, so a
//     1-worker pool (or a call from inside a worker task) degrades to a
//     serial loop instead of deadlocking, and the pool adds throughput
//     strictly on top of the caller's own core.
//
// Determinism contract: the pool schedules work but never partitions it —
// chunk boundaries come from the caller. Campaign code keeps its output
// bit-identical across thread counts by fixing the chunk geometry and
// merging results in chunk-index order (see trace_sim.cpp / dpa.cpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace medsec::core {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  /// Stops the workers. Tasks already running finish; tasks still queued
  /// are abandoned (the FleetServer's shutdown semantics).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. Thread-safe; may be called from inside a task.
  /// Dropped (returns false) once shutdown has begun.
  bool submit(std::function<void()> fn);

  /// Block until the queue is empty and no task is running.
  void wait_idle();

  /// wait_idle() with a budget: returns true if the pool went idle within
  /// `budget`, false if work was still in flight when it expired (the
  /// FleetServer's bounded-drain straggler path).
  bool wait_idle_for(std::chrono::milliseconds budget);

  /// Run fn(begin, end) over [0, n) split into chunks of `grain` (last
  /// chunk may be short). Blocks until all chunks are done. The calling
  /// thread executes chunks alongside the workers, pulling from a shared
  /// chunk counter — safe to call from a worker task and on a pool whose
  /// workers are all busy. Exceptions from fn propagate to the caller
  /// (first one wins; remaining chunks still execute).
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized to the hardware (lazy, never destroyed
  /// before exit). The campaign engine and the averaged-capture fan-out
  /// use this one; the FleetServer owns a private pool sized by its
  /// config.
  static ThreadPool& shared();

  /// Resolve a caller-facing `threads` knob for parallel_for fan-out:
  /// 1 -> nullptr (run everything on the calling thread), 0 -> the
  /// shared pool (all hardware threads), >= 2 -> a pool giving exactly
  /// that many runners — the calling thread participates in
  /// parallel_for, so a private (threads - 1)-worker pool is built into
  /// `owner` unless the shared pool already has that size.
  static ThreadPool* for_config(std::size_t threads,
                                std::unique_ptr<ThreadPool>& owner);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: work available / stop
  std::condition_variable idle_cv_;  ///< wait_idle(): queue empty + idle
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace medsec::core
