#include "core/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace medsec::core {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();  // abandon queued-but-unstarted work
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::submit(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

bool ThreadPool::wait_idle_for(std::chrono::milliseconds budget) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, budget, [this] {
    return queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;

  // Shared chunk counter: workers and the caller pull chunks until the
  // counter runs dry. `done` counts finished chunks so the caller can
  // tell "no chunk left to claim" from "every claimed chunk finished".
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();

  auto run_chunks = [shared, n, grain, chunks, &fn] {
    for (;;) {
      const std::size_t c = shared->next.fetch_add(1);
      if (c >= chunks) return;
      const std::size_t begin = c * grain;
      const std::size_t end = begin + grain < n ? begin + grain : n;
      try {
        fn(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(shared->mu);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1) + 1 == chunks) {
        const std::lock_guard<std::mutex> lock(shared->mu);
        shared->cv.notify_all();
      }
    }
  };

  // One helper task per worker is enough: each loops over the counter.
  // Helpers that wake after the counter is exhausted return immediately.
  // They capture `fn` by reference, which is safe because the caller
  // blocks below until all `chunks` completions are counted.
  if (chunks > 1)
    for (std::size_t i = 0; i < workers_.size(); ++i) submit(run_chunks);
  run_chunks();

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->done.load() == chunks; });
  if (shared->error) std::rethrow_exception(shared->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool* pool = new ThreadPool(0);  // leaked: alive at exit
  return *pool;
}

ThreadPool* ThreadPool::for_config(std::size_t threads,
                                   std::unique_ptr<ThreadPool>& owner) {
  if (threads == 1) return nullptr;
  ThreadPool* pool = &shared();
  if (threads > 1 && threads - 1 != pool->size()) {
    owner = std::make_unique<ThreadPool>(threads - 1);
    pool = owner.get();
  }
  return pool;
}

}  // namespace medsec::core
