// isa_audit.h — architecture-level security evaluation of the ISA (§5).
//
// "Sensitive data should appear only on the internal data-bus, and should
// not be available through the instruction set. So, no strange combination
// of instructions should release the key or the private data. ...
// Moreover, to prevent timing attacks, all instructions should execute
// with a constant number of cycles."
//
// The audit checks these claims against the model, mechanically:
//
//   1. Key reachability: the scalar streams into the sequencer's select
//      logic only; no opcode names it as a data operand. Verified by
//      enumerating the ISA and by a differential experiment — two point
//      multiplications with different keys must leave byte-identical
//      register files after zeroization (except the legitimate result).
//   2. Constant latency: for every opcode, executed cycle count equals the
//      declared latency for extreme operand values (all-zeros, all-ones,
//      random), independent of data.
//   3. Register budget: every microcode stream addresses only the six
//      architectural registers (§4's memory claim).
//   4. Zeroization: after zeroize(), no working register retains state.
#pragma once

#include <string>
#include <vector>

#include "core/secure_processor.h"

namespace medsec::core {

struct AuditFinding {
  std::string check;
  bool pass = false;
  std::string detail;
};

struct IsaAuditReport {
  std::vector<AuditFinding> findings;
  bool all_pass() const {
    for (const auto& f : findings)
      if (!f.pass) return false;
    return !findings.empty();
  }
};

/// Run the full audit against a given countermeasure configuration.
IsaAuditReport audit_isa(const ecc::Curve& curve,
                         const CountermeasureConfig& config =
                             CountermeasureConfig::protected_default());

}  // namespace medsec::core
