#include "core/secure_processor.h"

#include <stdexcept>

#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"

namespace medsec::core {

namespace {

using ecc::Fe;
using ecc::Point;
using ecc::Scalar;

std::array<std::uint8_t, 8> seed_bytes(std::uint64_t seed) {
  std::array<std::uint8_t, 8> b{};
  for (int i = 0; i < 8; ++i)
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  return b;
}

hw::CoprocessorConfig to_hw_config(const CountermeasureConfig& c) {
  hw::CoprocessorConfig hc;
  hc.digit_size = c.digit_size;
  hc.secure = c.circuit;
  hc.record_cycles = c.record_cycles;
  return hc;
}

}  // namespace

CountermeasureConfig CountermeasureConfig::unprotected() {
  CountermeasureConfig c;
  c.constant_time_ladder = true;  // the schedule stays MPL; see below
  c.ladder = LadderCountermeasures::none();
  c.zeroize_after_use = false;
  c.circuit.balanced_mux_encoding = false;
  c.circuit.uniform_clock_gating = false;
  c.circuit.isolate_datapath_inputs = false;
  return c;
}

CountermeasureConfig CountermeasureConfig::hardened() {
  CountermeasureConfig c;
  c.ladder = LadderCountermeasures::full();
  return c;
}

SecureEccProcessor::SecureEccProcessor(const ecc::Curve& curve,
                                       const CountermeasureConfig& config,
                                       std::uint64_t seed)
    : curve_(&curve), config_(config), seed_(seed),
      root_(curve, config, seed) {}

SecureEccProcessor::Session SecureEccProcessor::open_session(
    std::uint64_t session_seed) const {
  // splitmix-style diversification keeps distinct sessions' DRBG streams
  // independent even for adjacent session seeds.
  std::uint64_t mixed = seed_ ^ (session_seed * 0x9E3779B97F4A7C15ULL);
  mixed ^= mixed >> 31;
  return Session(*curve_, config_, mixed);
}

SecureEccProcessor::Session::Session(const ecc::Curve& curve,
                                     const CountermeasureConfig& config,
                                     std::uint64_t seed)
    : curve_(&curve), config_(config), coproc_(to_hw_config(config)),
      drbg_(seed_bytes(seed)) {}

PointMultOutcome SecureEccProcessor::Session::point_mult(const Scalar& k,
                                                         const Point& p) {
  // Trust boundary (§5's insecure zone, but validation is mandatory):
  // reject off-curve, small-subgroup and infinity inputs before the key
  // ever meets the data. The exact order·P check is kept here (not the
  // cofactor fast path): this boundary models the fielded chip's
  // fault-attack gate, and the full multiplication is what the paper's
  // controller runs.
  if (!curve_->validate_subgroup_point_exact(p))
    throw std::invalid_argument(
        "SecureEccProcessor::point_mult: invalid input point");

  PointMultOutcome out;
  std::uint64_t backoff = config_.fault_backoff_cycles;
  for (std::size_t attempt = 0;; ++attempt) {
    // The countermeasure-dependent inputs — masked base, (possibly
    // blinded) key bits, microcode options — come from the shared
    // planner, so this victim and the trace simulator's cycle-accurate
    // victim can never drift apart in draw order or encoding. A fresh
    // plan per attempt is the recovery policy's re-randomization: every
    // retry draws new blinds and randomizers from the DRBG.
    const sidechannel::HardenedCoprocPlan plan =
        sidechannel::plan_hardened_coproc_mult(*curve_, config_.ladder, k, p,
                                               drbg_, blinding_pair_,
                                               blinding_key_);

    bool detected = false;
    // Entry validation of the masked base (on-the-fly curve membership):
    // a corrupted blinding pair or masked point never reaches the ladder.
    if (config_.ladder.validate_points &&
        (plan.base.infinity || !curve_->is_on_curve(plan.base)))
      detected = true;

    hw::PointMultResult r{};
    bool ran = false;
    if (!detected) {
      r = coproc_.point_mult(plan.key_bits, plan.base.x, plan.options);
      out.cycles += r.exec.cycles;
      out.energy_j += r.energy_j;
      out.seconds += r.seconds;
      ran = true;
      // Cycle coherence against the compiled schedule constant — the
      // detector that catches computationally-absorbed glitches.
      if (config_.ladder.coherence_check &&
          r.exec.cycles !=
              coproc_.point_mult_cycles(plan.key_bits.size(), plan.options))
        detected = true;
    }

    // Insecure-zone software: y-recovery from the projective outputs.
    // The recovery validates the result against the curve equation — the
    // always-on fault canary, independent of the ladder config.
    Point result = Point::at_infinity();
    if (ran && !detected) {
      try {
        result = r.result_is_infinity
                     ? Point::at_infinity()
                     : ecc::recover_from_ladder(*curve_, plan.base, r.x1,
                                                r.z1, r.x2, r.z2);
      } catch (const std::logic_error&) {
        detected = true;
      }
    }

    if (config_.ladder.base_point_blinding && blinding_pair_) {
      if (!detected)
        result = curve_->add(result,
                             curve_->negate(blinding_pair_->correction()));
      // The pair advances even on a faulty run — a mask is burned the
      // moment it was used, recovered result or not.
      blinding_pair_->update(*curve_);
    }

    if (!detected) {
      out.result = result;
      out.avg_power_w =
          out.seconds > 0.0 ? out.energy_j / out.seconds : 0.0;
      // With telemetry off the coprocessor ran the record-free energy
      // path; clear instead of keeping a stale buffer from an earlier
      // config.
      last_records_ = std::move(r.exec.records);
      if (config_.zeroize_after_use) {
        // Result stays in X1 (it is the output); everything else is
        // cleared through the cached compiled fragment (energy-only sink
        // — the controller discards this step's telemetry).
        coproc_.zeroize(/*keep_result=*/true);
      }
      return out;
    }

    // Detected fault: nothing leaves the device. Zeroize everything
    // (result register included — it may hold faulty key-dependent
    // state), drop the telemetry of the poisoned run, and either retry
    // after a doubling backoff or give up on a persistent fault.
    ++out.faults_detected;
    last_records_.clear();
    coproc_.zeroize(/*keep_result=*/false);
    if (attempt == config_.fault_retry_budget)
      throw std::logic_error(
          "SecureEccProcessor::point_mult: fault persisted after " +
          std::to_string(config_.fault_retry_budget) +
          " recovery retries; session quarantine required");
    ++out.retries;
    out.cycles += backoff;
    out.seconds +=
        static_cast<double>(backoff) / coproc_.config().tech.clock_hz;
    backoff *= 2;
  }
}

}  // namespace medsec::core
