#include "core/secure_processor.h"

#include <stdexcept>

#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"

namespace medsec::core {

namespace {

using ecc::Fe;
using ecc::Point;
using ecc::Scalar;

std::array<std::uint8_t, 8> seed_bytes(std::uint64_t seed) {
  std::array<std::uint8_t, 8> b{};
  for (int i = 0; i < 8; ++i)
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  return b;
}

hw::CoprocessorConfig to_hw_config(const CountermeasureConfig& c) {
  hw::CoprocessorConfig hc;
  hc.digit_size = c.digit_size;
  hc.secure = c.circuit;
  hc.record_cycles = true;
  return hc;
}

Fe nonzero_fe(rng::RandomSource& rng) {
  for (;;) {
    bigint::U192 v;
    for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
    const Fe fe = Fe::from_bits(v);
    if (!fe.is_zero()) return fe;
  }
}

}  // namespace

CountermeasureConfig CountermeasureConfig::unprotected() {
  CountermeasureConfig c;
  c.constant_time_ladder = true;  // the schedule stays MPL; see below
  c.randomize_projective = false;
  c.zeroize_after_use = false;
  c.circuit.balanced_mux_encoding = false;
  c.circuit.uniform_clock_gating = false;
  c.circuit.isolate_datapath_inputs = false;
  return c;
}

SecureEccProcessor::SecureEccProcessor(const ecc::Curve& curve,
                                       const CountermeasureConfig& config,
                                       std::uint64_t seed)
    : curve_(&curve), config_(config), seed_(seed),
      root_(curve, config, seed) {}

SecureEccProcessor::Session SecureEccProcessor::open_session(
    std::uint64_t session_seed) const {
  // splitmix-style diversification keeps distinct sessions' DRBG streams
  // independent even for adjacent session seeds.
  std::uint64_t mixed = seed_ ^ (session_seed * 0x9E3779B97F4A7C15ULL);
  mixed ^= mixed >> 31;
  return Session(*curve_, config_, mixed);
}

SecureEccProcessor::Session::Session(const ecc::Curve& curve,
                                     const CountermeasureConfig& config,
                                     std::uint64_t seed)
    : curve_(&curve), config_(config), coproc_(to_hw_config(config)),
      drbg_(seed_bytes(seed)) {}

PointMultOutcome SecureEccProcessor::Session::point_mult(const Scalar& k,
                                                         const Point& p) {
  // Trust boundary (§5's insecure zone, but validation is mandatory):
  // reject off-curve, small-subgroup and infinity inputs before the key
  // ever meets the data. The exact order·P check is kept here (not the
  // cofactor fast path): this boundary models the fielded chip's
  // fault-attack gate, and the full multiplication is what the paper's
  // controller runs.
  if (!curve_->validate_subgroup_point_exact(p))
    throw std::invalid_argument(
        "SecureEccProcessor::point_mult: invalid input point");

  // Constant-length recoding (algorithm-level timing countermeasure).
  const Scalar padded = ecc::constant_length_scalar(*curve_, k);
  std::vector<int> bits;
  bits.reserve(padded.bit_length());
  for (std::size_t i = padded.bit_length(); i-- > 0;)
    bits.push_back(padded.bit(i) ? 1 : 0);

  hw::PointMultOptions opt;
  if (config_.randomize_projective)
    opt.z_randomizers = {nonzero_fe(drbg_), nonzero_fe(drbg_)};

  auto r = coproc_.point_mult(bits, p.x, opt);

  PointMultOutcome out;
  out.cycles = r.exec.cycles;
  out.energy_j = r.energy_j;
  out.avg_power_w = r.avg_power_w;
  out.seconds = r.seconds;

  // Insecure-zone software: y-recovery from the projective outputs. The
  // recovery validates the result against the curve equation (the fault
  // canary) and throws std::logic_error on mismatch.
  out.result = r.result_is_infinity
                   ? Point::at_infinity()
                   : ecc::recover_from_ladder(*curve_, p, r.x1, r.z1, r.x2,
                                              r.z2);

  last_records_ = std::move(r.exec.records);

  if (config_.zeroize_after_use) {
    // Result stays in X1 (it is the output); everything else is cleared.
    coproc_.execute(hw::microcode::zeroize(/*keep_result=*/true));
  }
  return out;
}

}  // namespace medsec::core
