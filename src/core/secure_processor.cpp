#include "core/secure_processor.h"

#include <stdexcept>

#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"

namespace medsec::core {

namespace {

using ecc::Fe;
using ecc::Point;
using ecc::Scalar;

std::array<std::uint8_t, 8> seed_bytes(std::uint64_t seed) {
  std::array<std::uint8_t, 8> b{};
  for (int i = 0; i < 8; ++i)
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  return b;
}

hw::CoprocessorConfig to_hw_config(const CountermeasureConfig& c) {
  hw::CoprocessorConfig hc;
  hc.digit_size = c.digit_size;
  hc.secure = c.circuit;
  hc.record_cycles = c.record_cycles;
  return hc;
}

}  // namespace

CountermeasureConfig CountermeasureConfig::unprotected() {
  CountermeasureConfig c;
  c.constant_time_ladder = true;  // the schedule stays MPL; see below
  c.ladder = LadderCountermeasures::none();
  c.zeroize_after_use = false;
  c.circuit.balanced_mux_encoding = false;
  c.circuit.uniform_clock_gating = false;
  c.circuit.isolate_datapath_inputs = false;
  return c;
}

CountermeasureConfig CountermeasureConfig::hardened() {
  CountermeasureConfig c;
  c.ladder = LadderCountermeasures::full();
  return c;
}

SecureEccProcessor::SecureEccProcessor(const ecc::Curve& curve,
                                       const CountermeasureConfig& config,
                                       std::uint64_t seed)
    : curve_(&curve), config_(config), seed_(seed),
      root_(curve, config, seed) {}

SecureEccProcessor::Session SecureEccProcessor::open_session(
    std::uint64_t session_seed) const {
  // splitmix-style diversification keeps distinct sessions' DRBG streams
  // independent even for adjacent session seeds.
  std::uint64_t mixed = seed_ ^ (session_seed * 0x9E3779B97F4A7C15ULL);
  mixed ^= mixed >> 31;
  return Session(*curve_, config_, mixed);
}

SecureEccProcessor::Session::Session(const ecc::Curve& curve,
                                     const CountermeasureConfig& config,
                                     std::uint64_t seed)
    : curve_(&curve), config_(config), coproc_(to_hw_config(config)),
      drbg_(seed_bytes(seed)) {}

PointMultOutcome SecureEccProcessor::Session::point_mult(const Scalar& k,
                                                         const Point& p) {
  // Trust boundary (§5's insecure zone, but validation is mandatory):
  // reject off-curve, small-subgroup and infinity inputs before the key
  // ever meets the data. The exact order·P check is kept here (not the
  // cofactor fast path): this boundary models the fielded chip's
  // fault-attack gate, and the full multiplication is what the paper's
  // controller runs.
  if (!curve_->validate_subgroup_point_exact(p))
    throw std::invalid_argument(
        "SecureEccProcessor::point_mult: invalid input point");

  // The countermeasure-dependent inputs — masked base, (possibly
  // blinded) key bits, microcode options — come from the shared planner,
  // so this victim and the trace simulator's cycle-accurate victim can
  // never drift apart in draw order or encoding.
  const sidechannel::HardenedCoprocPlan plan =
      sidechannel::plan_hardened_coproc_mult(*curve_, config_.ladder, k, p,
                                             drbg_, blinding_pair_,
                                             blinding_key_);

  auto r = coproc_.point_mult(plan.key_bits, plan.base.x, plan.options);

  PointMultOutcome out;
  out.cycles = r.exec.cycles;
  out.energy_j = r.energy_j;
  out.avg_power_w = r.avg_power_w;
  out.seconds = r.seconds;

  // Insecure-zone software: y-recovery from the projective outputs. The
  // recovery validates the result against the curve equation (the fault
  // canary) and throws std::logic_error on mismatch.
  out.result = r.result_is_infinity
                   ? Point::at_infinity()
                   : ecc::recover_from_ladder(*curve_, plan.base, r.x1, r.z1,
                                              r.x2, r.z2);

  if (config_.ladder.base_point_blinding) {
    out.result =
        curve_->add(out.result, curve_->negate(blinding_pair_->correction()));
    blinding_pair_->update(*curve_);
  }

  // With telemetry off the coprocessor ran the record-free energy path;
  // clear instead of keeping a stale buffer from an earlier config.
  last_records_ = std::move(r.exec.records);

  if (config_.zeroize_after_use) {
    // Result stays in X1 (it is the output); everything else is cleared
    // through the cached compiled fragment (energy-only sink — the
    // controller discards this step's telemetry).
    coproc_.zeroize(/*keep_result=*/true);
  }
  return out;
}

}  // namespace medsec::core
