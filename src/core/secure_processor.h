// secure_processor.h — the paper's artifact as one object: a low-energy,
// physically protected elliptic-curve processor for medical devices.
//
// This is the public face of the library. It composes
//   * the secure zone: the cycle-accurate co-processor (hw::Coprocessor)
//     with its circuit-level countermeasures (§6),
//   * the device RNG: an HMAC-DRBG seeding the §7 projective-coordinate
//     randomization,
//   * the insecure zone: controller software doing the key-independent
//     steps (point validation, y-recovery, zeroization sequencing — §5's
//     secure/insecure partition),
// behind a validated point-multiplication API with energy/side-channel
// telemetry. The countermeasure set is explicit configuration, because
// the paper's whole argument is that each one is a design *decision* with
// an area/power/security price.
#pragma once

#include <cstdint>
#include <optional>

#include "ecc/curve.h"
#include "hw/coprocessor.h"
#include "rng/hmac_drbg.h"
#include "sidechannel/countermeasures.h"

namespace medsec::core {

/// The algorithm-level ladder defenses (RPC, scalar blinding, base-point
/// blinding, shuffled scheduling) live in one unified config shared with
/// the trace simulator and the evaluation matrix.
using LadderCountermeasures = sidechannel::CountermeasureConfig;

/// Every countermeasure the paper discusses, one switch each, grouped by
/// the abstraction level that owns it (the "security pyramid" of §3).
struct CountermeasureConfig {
  // Algorithm level (§4/§7): the unified ladder-countermeasure set. The
  // paper's shipped chip enables exactly RPC; the other switches are the
  // evaluation matrix's extensions.
  bool constant_time_ladder = true;   ///< MPL with padded scalar (vs D&A)
  LadderCountermeasures ladder = LadderCountermeasures::rpc_only();
  // Architecture level (§5).
  std::size_t digit_size = 4;         ///< the 163x4 MALU choice
  bool zeroize_after_use = true;      ///< no key-derived residue in regs
  // Circuit level (§6).
  hw::SecureConfig circuit;           ///< mux encoding / gating / isolation
  // Telemetry (model instrumentation, not a chip feature): materialize
  // per-cycle records for last_records(). Energy-only callers (E1, the
  // fleet paths) switch this off and the co-processor streams through
  // the energy sink — no record storage at all; the energy / power /
  // cycle telemetry in PointMultOutcome is identical either way.
  bool record_cycles = true;
  // Graceful degradation under detected faults (the §5 controller's
  // recovery policy). A detection — ladder-invariant canary, or cycle
  // coherence when ladder.coherence_check is set — zeroizes the register
  // file, re-randomizes every blind (fresh DRBG draws on the next plan),
  // waits out a backoff, and retries. The budget bounds how many retries
  // a persistent (stuck-at) fault can consume before the session gives
  // up and throws; nothing is ever released from a detected-faulty run.
  std::size_t fault_retry_budget = 2;     ///< retries before giving up
  std::uint64_t fault_backoff_cycles = 4096;  ///< first backoff, doubles

  /// The paper's shipped configuration (everything on).
  static CountermeasureConfig protected_default() { return {}; }
  /// Everything off: the DPA/SPA-vulnerable strawman the benches attack.
  static CountermeasureConfig unprotected();
  /// The paper's chip plus every ladder-level defense this layer adds.
  static CountermeasureConfig hardened();
};

/// One point multiplication's outcome + telemetry. Cycles / energy /
/// seconds accumulate across fault-recovery retries (backoff included):
/// the ledger charges what the device actually spent, not just the
/// attempt that succeeded.
struct PointMultOutcome {
  ecc::Point result;
  std::size_t cycles = 0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double seconds = 0.0;
  std::size_t faults_detected = 0;  ///< detector trips during this call
  std::size_t retries = 0;          ///< recovery re-executions performed
};

class SecureEccProcessor {
 public:
  /// A reentrant per-session execution handle: its own co-processor
  /// register file, its own DRBG stream, its own telemetry buffer. The
  /// engine layer opens one per protocol session so concurrent sessions
  /// never share mutable state (the processor facade itself keeps no
  /// per-operation state) — the paper's chip serves one link, the fleet
  /// server model needs thousands of independent ones.
  class Session {
   public:
    Session(const ecc::Curve& curve, const CountermeasureConfig& config,
            std::uint64_t seed);

    /// Validated k·P. Throws std::invalid_argument if P is not a valid
    /// prime-order subgroup point (invalid-curve / small-subgroup gate).
    /// A detected fault (ladder-invariant canary, cycle coherence)
    /// zeroizes, re-randomizes blinds and retries under
    /// config.fault_retry_budget with doubling backoff; when the budget
    /// is exhausted — a persistent fault — it throws std::logic_error
    /// with nothing released. Transient glitches recover transparently
    /// (outcome.retries > 0 is the only trace).
    PointMultOutcome point_mult(const ecc::Scalar& k, const ecc::Point& p);

    /// Arm / clear a physical fault on this session's co-processor — the
    /// fault-drill and test hook (a fielded chip has no such port).
    void arm_fault(const hw::FaultSpec& fault) { coproc_.arm_fault(fault); }
    void disarm_fault() { coproc_.disarm_fault(); }

    /// Telemetry from this session's last operation (empty if
    /// record_cycles is off or nothing ran yet).
    const std::vector<hw::CycleRecord>& last_records() const {
      return last_records_;
    }
    const hw::Coprocessor& coprocessor() const { return coproc_; }
    double area_ge() const { return coproc_.area_ge(); }

   private:
    const ecc::Curve* curve_;
    CountermeasureConfig config_;
    hw::Coprocessor coproc_;
    rng::HmacDrbg drbg_;
    std::vector<hw::CycleRecord> last_records_;
    /// Base-point-blinding state: the (R, S = k·R) update pair, rebuilt
    /// when the session multiplies under a different key.
    std::optional<sidechannel::BaseBlindingPair> blinding_pair_;
    ecc::Scalar blinding_key_{};
  };

  /// `seed` initializes the device DRBG (models the provisioning-time
  /// entropy; production would reseed from the TRNG).
  SecureEccProcessor(const ecc::Curve& curve,
                     const CountermeasureConfig& config,
                     std::uint64_t seed = 0x5EC0'FFEE);

  const ecc::Curve& curve() const { return *curve_; }
  const CountermeasureConfig& config() const { return config_; }
  double area_ge() const { return root_.area_ge(); }

  /// Open an independent session handle. `session_seed` diversifies the
  /// handle's DRBG from the device seed (a fielded chip would mix in the
  /// TRNG); handles are safe to drive from different threads.
  Session open_session(std::uint64_t session_seed) const;

  /// Single-threaded facade: the device's root session. Exactly the
  /// historical API — point_mult + last_records() on shared state.
  PointMultOutcome point_mult(const ecc::Scalar& k, const ecc::Point& p) {
    return root_.point_mult(k, p);
  }

  /// Telemetry from the last operation (empty if record_cycles is off or
  /// nothing ran yet) — the hook the side-channel benches instrument.
  const std::vector<hw::CycleRecord>& last_records() const {
    return root_.last_records();
  }

  /// Direct read of the co-processor register file (white-box evaluation
  /// and the ISA audit; a fielded chip has no such port).
  const hw::Coprocessor& coprocessor() const { return root_.coprocessor(); }

 private:
  const ecc::Curve* curve_;
  CountermeasureConfig config_;
  std::uint64_t seed_;
  Session root_;
};

}  // namespace medsec::core
