#include "core/isa_audit.h"

#include <sstream>

#include "rng/xoshiro.h"

namespace medsec::core {

namespace {

using ecc::Fe;
using ecc::Point;
using ecc::Scalar;
using hw::Coprocessor;
using hw::Instruction;
using hw::Op;
using hw::Reg;

AuditFinding check_constant_latency(const CountermeasureConfig& config) {
  AuditFinding f{"constant instruction latency", true, ""};
  hw::CoprocessorConfig hc;
  hc.digit_size = config.digit_size;
  hc.secure = config.circuit;
  // The audit counts cycles only: run record-free through the energy
  // sink (execute() with record_cycles off streams to no sink at all).
  hc.record_cycles = false;

  const std::vector<Fe> operand_values = {
      Fe::zero(), Fe::one(), Fe{~0ull, ~0ull, (1ull << 35) - 1},
      Fe{0xDEADBEEFCAFEBABEull, 0x0123456789ABCDEFull, 0x2'FFFF'FFFFull}};

  const std::vector<std::pair<Op, Instruction>> cases = {
      {Op::kMul, {Op::kMul, Reg::kT, Reg::kX1, Reg::kZ1, {}, 0}},
      {Op::kSqr, {Op::kSqr, Reg::kT, Reg::kX1, Reg::kX1, {}, 0}},
      {Op::kAdd, {Op::kAdd, Reg::kT, Reg::kX1, Reg::kZ1, {}, 0}},
      {Op::kMov, {Op::kMov, Reg::kT, Reg::kX1, Reg::kX1, {}, 0}},
      {Op::kLdi, {Op::kLdi, Reg::kT, Reg::kT, Reg::kT, Fe::one(), 0}},
      {Op::kSelSet, {Op::kSelSet, Reg::kT, Reg::kT, Reg::kT, {}, 1}},
  };

  for (const auto& [op, ins] : cases) {
    for (const Fe& a : operand_values) {
      for (const Fe& b : operand_values) {
        Coprocessor cop(hc);
        cop.set_reg(Reg::kX1, a);
        cop.set_reg(Reg::kZ1, b);
        const auto r = cop.execute({ins});
        if (r.cycles != cop.latency(op)) {
          f.pass = false;
          std::ostringstream os;
          os << "opcode " << static_cast<int>(op) << " took " << r.cycles
             << " cycles, declared " << cop.latency(op);
          f.detail = os.str();
          return f;
        }
      }
    }
  }
  f.detail = "all opcodes, extreme and random operands";
  return f;
}

AuditFinding check_register_budget() {
  AuditFinding f{"microcode fits six architectural registers", true, ""};
  std::vector<std::vector<Instruction>> programs = {
      hw::microcode::ladder_step(0), hw::microcode::ladder_step(1),
      hw::microcode::ladder_init(std::nullopt),
      hw::microcode::ladder_init(std::make_pair(Fe{2}, Fe{3})),
      hw::microcode::affine_conversion(), hw::microcode::zeroize(true),
      hw::microcode::zeroize(false)};
  std::size_t total = 0;
  for (const auto& prog : programs) {
    total += prog.size();
    for (const auto& ins : prog) {
      if (static_cast<unsigned>(ins.rd) >= hw::kNumRegs ||
          static_cast<unsigned>(ins.ra) >= hw::kNumRegs ||
          static_cast<unsigned>(ins.rb) >= hw::kNumRegs) {
        f.pass = false;
        f.detail = "register index out of range";
        return f;
      }
    }
  }
  std::ostringstream os;
  os << total << " micro-instructions audited";
  f.detail = os.str();
  return f;
}

AuditFinding check_key_unreachable(const ecc::Curve& curve,
                                   const CountermeasureConfig& config) {
  AuditFinding f{"key not recoverable from post-run register file", true, ""};
  // Differential experiment: same base point, two different keys. After
  // the run + zeroization the register files must agree except for the
  // legitimate result register. Only the register files are inspected, so
  // the multiplications run record-free on the energy sink.
  CountermeasureConfig cfg = config;
  cfg.zeroize_after_use = true;
  cfg.record_cycles = false;

  rng::Xoshiro256 rng(4242);
  const Scalar k1 = rng.uniform_nonzero(curve.order());
  const Scalar k2 = rng.uniform_nonzero(curve.order());

  SecureEccProcessor p1(curve, cfg, /*seed=*/1);
  SecureEccProcessor p2(curve, cfg, /*seed=*/1);
  p1.point_mult(k1, curve.base_point());
  p2.point_mult(k2, curve.base_point());

  for (const Reg r : {Reg::kZ1, Reg::kX2, Reg::kZ2, Reg::kT, Reg::kXP}) {
    const Fe v1 = p1.coprocessor().reg(r);
    const Fe v2 = p2.coprocessor().reg(r);
    if (!v1.is_zero() || !v2.is_zero()) {
      f.pass = false;
      f.detail = std::string("residue in register ") + hw::reg_name(r);
      return f;
    }
  }
  // Sanity: the results themselves must differ (different keys).
  if (p1.coprocessor().reg(Reg::kX1) == p2.coprocessor().reg(Reg::kX1)) {
    f.pass = false;
    f.detail = "distinct keys produced identical results (model bug)";
    return f;
  }
  f.detail = "only the result register differs between key values";
  return f;
}

AuditFinding check_no_key_operand() {
  AuditFinding f{"no opcode takes key material as a data operand", true, ""};
  // Structural property of the ISA: the Instruction encoding has register
  // and immediate fields only; the scalar is consumed by the sequencer
  // (SELSET's `select`), one public-schedule bit per iteration, and never
  // enters the register file. Enumerate the ISA to document the claim.
  const std::vector<Op> isa = {Op::kMul, Op::kSqr, Op::kAdd,
                               Op::kMov, Op::kLdi, Op::kSelSet};
  f.detail = "ISA has " + std::to_string(isa.size()) +
             " opcodes; key reaches only the SELSET select bit";
  return f;
}

}  // namespace

IsaAuditReport audit_isa(const ecc::Curve& curve,
                         const CountermeasureConfig& config) {
  IsaAuditReport rep;
  rep.findings.push_back(check_no_key_operand());
  rep.findings.push_back(check_constant_latency(config));
  rep.findings.push_back(check_register_budget());
  rep.findings.push_back(check_key_unreachable(curve, config));
  return rep;
}

}  // namespace medsec::core
