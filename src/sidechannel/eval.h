// eval.h — the attack × countermeasure × lane-backend evaluation matrix.
//
// The paper's §7 evaluation is one row of a much larger table: one attack
// (DPA), one countermeasure (RPC), one implementation. This engine runs
// the whole grid — every attack in the repo's arsenal against every
// countermeasure configuration, optionally across every wide-lane backend
// — and renders a verdict per cell: did the key fall, at what trace
// budget, and does any trace point still leak (TVLA)? Like HARP's
// write-and-verify loop, a countermeasure only counts once the
// measurement that motivated it has been re-run against it.
//
// Campaign generation and attack analysis ride the PR 3 campaign engine
// (wide lanes + thread pool + streaming statistics), so a full matrix is
// minutes, not hours. Results serialize to the BENCH_eval_matrix.json
// verdict table consumed by CI and the README's reading guide.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ecc/curve.h"
#include "sidechannel/countermeasures.h"

namespace medsec::sidechannel {

enum class EvalAttack {
  kCpaKnownInput,  ///< standard known-input CPA (ladder_dpa_attack)
  kCpaWhiteBox,    ///< §7 white-box: Z-randomizers known to the attacker
  kDom,            ///< Kocher difference-of-means variant
  kTvla,           ///< fixed-vs-random Welch t leakage assessment
  /// The §6 SPA vectors (mux-control + clock-gating) against the
  /// cycle-accurate co-processor victim on a worst-case circuit (naive
  /// mux encoding, data-dependent gating): profile the schedule on the
  /// attacker's own device, average the victim through the SPA
  /// feature-extractor sink, classify. Evaluates whether the row's
  /// *ladder-level* defense alone defeats a leaky circuit — shuffle does
  /// (positions smear), blinding decorrelates the read bits from k, rpc
  /// and base blinding do not touch the select-line schedule.
  kSpa,
  /// Safe-error fault attack (fault_attacks.h): one select glitch per
  /// ladder slot, read the correct-vs-garbage release oracle. Evaluates
  /// the fault-countermeasure columns — the coherence check catches even
  /// computationally-absorbed glitches, infective computation destroys
  /// the oracle itself.
  kFaultSafeError,
  /// Invalid-point fault injection (fault_attacks.h): stuck-at on the
  /// base register forces an off-curve ladder; point validation and the
  /// ladder-invariant canary must catch it before release.
  kFaultInvalidPoint,
};

const char* eval_attack_name(EvalAttack a);

struct EvalConfig {
  /// Grid rows: the countermeasure configurations to evaluate.
  std::vector<CountermeasureConfig> countermeasures;
  /// Grid columns: the attacks to run against each row.
  std::vector<EvalAttack> attacks;
  /// Lane backends to sweep by name ("scalar", "bitsliced", "clmul");
  /// empty = just the currently active backend. Unavailable backends are
  /// skipped (recorded nowhere — the matrix only contains real runs).
  std::vector<std::string> lane_backends;

  std::size_t traces = 400;          ///< campaign budget per attack cell
  std::size_t bits_to_attack = 12;   ///< leading key bits per recovery
  /// Trace-count sweep for the traces-to-break column (key-recovery
  /// attacks only); empty = skip the sweep.
  std::vector<std::size_t> break_sweep;
  std::size_t tvla_traces_per_group = 120;
  /// Averaged victim captures per SPA cell (the attacker's standard
  /// noise-reduction step; pooled via `threads`).
  std::size_t spa_captures = 8;
  std::uint64_t seed = 1;            ///< campaign seed (deterministic)
  std::size_t threads = 0;           ///< 0 = every hardware thread

  /// The bench's standard grid: none / rpc / blind / base / shuffle /
  /// full plus the fault-hardened rows (validate-only, validated,
  /// infective) against all seven attacks.
  static EvalConfig standard();

  /// Fail loudly on an unknown or incoherent grid before any campaign
  /// runs: empty axes, out-of-range budgets, lane backends outside the
  /// compiled-in set ("scalar", "bitsliced", "clmul" — the PR 7
  /// MEDSEC_GF2M_BACKEND contract), and countermeasure rows that cannot
  /// mean anything (infective computation with no detector, zero-width
  /// or over-wide scalar blinds, shuffling with zero dummies). Throws
  /// std::invalid_argument naming the offending field and the valid set.
  void validate() const;
};

/// One verdict cell of the matrix.
struct EvalCell {
  std::string attack;
  std::string countermeasure;
  std::string lane_backend;
  std::size_t traces = 0;
  // Key-recovery attacks:
  double accuracy = 0.0;           ///< recovered-bit accuracy (0.5 ~ chance)
  bool key_recovered = false;      ///< all attacked bits correct
  std::size_t traces_to_break = 0; ///< smallest sweep count that broke; 0 = held
  // TVLA:
  double tvla_max_t = 0.0;
  bool tvla_leaks = false;         ///< any |t| > 4.5
  // Fault attacks: shots whose release actually leaked (0 = the oracle
  // was dead and the attacker guessed coins — the defended shape).
  std::size_t informative_shots = 0;
  double seconds = 0.0;            ///< wall time of this cell
  /// The verdict: true when the defense held against this attack
  /// (key not recovered / no point over threshold).
  bool defense_holds = false;
};

struct EvalMatrix {
  std::vector<EvalCell> cells;

  /// Verdict table as JSON: {"schema":"medsec-eval-matrix-v1",
  /// "cells":[{...}]}. Hand-rolled, no dependencies.
  std::string to_json() const;
  /// Write to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;
};

/// Run the grid for victim secret k. Deterministic for a fixed config
/// (counter-seeded campaigns; the thread axis never changes values).
EvalMatrix run_eval_matrix(const ecc::Curve& curve, const ecc::Scalar& k,
                           const EvalConfig& config);

}  // namespace medsec::sidechannel
