#include "sidechannel/tvla.h"

#include <algorithm>
#include <cmath>

namespace medsec::sidechannel {

void TvlaAccumulator::reset(std::size_t length) {
  len_ = length;
  fixed_.n = random_.n = 0;
  fixed_.mean.assign(length, 0.0);
  fixed_.m2.assign(length, 0.0);
  random_.mean.assign(length, 0.0);
  random_.m2.assign(length, 0.0);
}

void TvlaAccumulator::Group::add(const Trace& t, std::size_t len) {
  ++n;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < len; ++i) {
    const double d = t[i] - mean[i];
    mean[i] += d * inv_n;
    m2[i] += d * (t[i] - mean[i]);
  }
}

void TvlaAccumulator::Group::merge(const Group& o, std::size_t len) {
  if (o.n == 0) return;
  if (n == 0) {
    n = o.n;
    mean = o.mean;
    m2 = o.m2;
    return;
  }
  const double na = static_cast<double>(n);
  const double nb = static_cast<double>(o.n);
  const double nt = na + nb;
  const double w = na * nb / nt;
  for (std::size_t i = 0; i < len; ++i) {
    const double d = o.mean[i] - mean[i];
    m2[i] += o.m2[i] + d * d * w;
    mean[i] += d * nb / nt;
  }
  n += o.n;
}

void TvlaAccumulator::merge(const TvlaAccumulator& o) {
  fixed_.merge(o.fixed_, len_);
  random_.merge(o.random_, len_);
}

TvlaReport TvlaAccumulator::report(double threshold) const {
  TvlaReport rep;
  rep.threshold = threshold;
  rep.t_values.reserve(len_);
  const double nf = static_cast<double>(fixed_.n);
  const double nr = static_cast<double>(random_.n);
  for (std::size_t i = 0; i < len_; ++i) {
    const double var_f = fixed_.n > 1 ? fixed_.m2[i] / (nf - 1.0) : 0.0;
    const double var_r = random_.n > 1 ? random_.m2[i] / (nr - 1.0) : 0.0;
    const double t = welch_t(fixed_.n, fixed_.mean[i], var_f, random_.n,
                             random_.mean[i], var_r);
    rep.t_values.push_back(t);
    rep.max_abs_t = std::max(rep.max_abs_t, std::abs(t));
    if (std::abs(t) > threshold) ++rep.points_over_threshold;
  }
  return rep;
}

TvlaReport tvla_fixed_vs_random(const TraceSet& fixed, const TraceSet& random,
                                double threshold, core::ThreadPool* pool) {
  const std::size_t len = std::min(fixed.length(), random.length());

  // Fixed block geometry: traces of both groups are interleaved into
  // blocks of kBlock, each block accumulated independently, then merged
  // in block order. The partition does not depend on the pool, so the
  // report is bit-identical at any thread count (and the serial path is
  // just "someone runs every block").
  constexpr std::size_t kBlock = 64;
  const std::size_t nf = fixed.traces.size();
  const std::size_t nr = random.traces.size();
  const std::size_t total = nf + nr;
  const std::size_t blocks = total == 0 ? 0 : (total + kBlock - 1) / kBlock;

  std::vector<TvlaAccumulator> acc(blocks);
  auto run_block = [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      acc[b].reset(len);
      const std::size_t lo = b * kBlock;
      const std::size_t hi = std::min(total, lo + kBlock);
      for (std::size_t j = lo; j < hi; ++j) {
        if (j < nf)
          acc[b].add_fixed(fixed.traces[j]);
        else
          acc[b].add_random(random.traces[j - nf]);
      }
    }
  };
  if (pool != nullptr)
    pool->parallel_for(blocks, 1, run_block);
  else
    run_block(0, blocks);

  TvlaAccumulator merged(len);
  for (const TvlaAccumulator& a : acc) merged.merge(a);
  return merged.report(threshold);
}

}  // namespace medsec::sidechannel
