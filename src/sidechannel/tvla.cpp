#include "sidechannel/tvla.h"

#include <algorithm>
#include <cmath>

namespace medsec::sidechannel {

TvlaReport tvla_fixed_vs_random(const TraceSet& fixed, const TraceSet& random,
                                double threshold) {
  TvlaReport rep;
  rep.threshold = threshold;
  const std::size_t len = std::min(fixed.length(), random.length());
  rep.t_values.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    RunningStats f, r;
    for (const Trace& t : fixed.traces) f.add(t[i]);
    for (const Trace& t : random.traces) r.add(t[i]);
    const double t = welch_t(f, r);
    rep.t_values.push_back(t);
    rep.max_abs_t = std::max(rep.max_abs_t, std::abs(t));
    if (std::abs(t) > threshold) ++rep.points_over_threshold;
  }
  return rep;
}

}  // namespace medsec::sidechannel
