// dpa.h — Differential Power Analysis on the Montgomery ladder (§7).
//
// "DPA recovers the key in a divide-and-conquer fashion by comparing the
// measured power consumption with several hypothesized power consumptions,
// one for each subkey hypothesis."
//
// The attack recovers the (padded) scalar bit by bit, MSB first. For each
// target bit it extends the per-trace ladder state — reconstructed from
// the *known base point* and the already-recovered prefix — under both
// hypotheses, predicts the register Hamming weight each hypothesis
// implies, and Pearson-correlates the predictions with the measured
// samples across traces (CPA, the modern form of Kocher's DoM test; a
// difference-of-means variant is also provided).
//
// With randomized projective coordinates the reconstructed states are
// wrong in a uniformly random way, both correlations collapse to ~0, and
// the bit decision degenerates to a coin flip — unless the randomizers
// are known (white-box), in which case the attacker folds them into the
// initial state and the attack works again. This is exactly the paper's
// three-scenario evaluation.
#pragma once

#include <cstddef>
#include <vector>

#include "ecc/curve.h"
#include "sidechannel/trace_sim.h"

namespace medsec::sidechannel {

enum class DpaStatistic {
  kCpa,  ///< Pearson correlation (default)
  kDom,  ///< difference of means on a single predicted bit
};

struct DpaConfig {
  std::size_t bits_to_attack = 16;  ///< leading bits to recover
  DpaStatistic statistic = DpaStatistic::kCpa;
  /// Minimum |correlation margin| for a bit to count as *confidently*
  /// recovered (used for reporting; the decision itself is argmax).
  double confidence_margin = 0.05;
  /// Attack-engine fan-out: worker threads (0 = every hardware thread,
  /// 1 = the calling thread only, k >= 2 = exactly k runners) and ladder
  /// lanes per hypothesis-extension group (0 = auto: a small multiple —
  /// currently 4x — of the lane backend's preferred width). Results
  /// (recovered bits *and* statistic values) are bit-identical for every
  /// combination: traces are reduced in fixed 256-trace blocks merged in
  /// block order, and the lane arithmetic is exact.
  std::size_t threads = 0;
  std::size_t lanes = 0;
};

struct DpaResult {
  std::vector<int> recovered_bits;
  /// Per-bit winning and losing statistic values.
  std::vector<double> stat_correct_hyp;   // chosen hypothesis
  std::vector<double> stat_rejected_hyp;  // other hypothesis
  std::size_t bits_correct = 0;  ///< vs ground truth (scoring only)
  bool full_success = false;     ///< all attacked bits correct
  /// Fraction of attacked bits recovered correctly (0.5 ~ guessing).
  double accuracy = 0.0;
};

/// Run the ladder CPA/DoM attack against a captured experiment.
/// The attack consumes only traces + base points (+ randomizers when the
/// scenario is white-box); true_bits are used only to score the result.
///
/// This is the streaming engine: per target bit, the two hypothesis
/// extensions share their differential add (the add is swap-symmetric,
/// so hyp 0 and hyp 1 differ only in which accumulator gets doubled —
/// one add + two doublings instead of two full iterations), trace blocks
/// extend state through the wide lane layer reusing scratch ladder
/// state, and predictions correlate against the measured column through
/// mergeable single-pass co-moment accumulators.
DpaResult ladder_dpa_attack(const ecc::Curve& curve,
                            const DpaExperiment& experiment,
                            const DpaConfig& config = {});

/// The PR 2 attack loop (per-trace scalar ladder_iteration under both
/// hypotheses, two-pass Pearson over materialized columns), kept as the
/// baseline for the campaign bench and as a cross-check oracle: it must
/// recover exactly the same bits as the engine on the same experiment.
DpaResult ladder_dpa_attack_reference(const ecc::Curve& curve,
                                      const DpaExperiment& experiment,
                                      const DpaConfig& config = {});

/// The paper's headline experiment: sweep the number of traces and report
/// whether the attack succeeds at each count. Returns one row per entry
/// of `trace_counts`.
struct DpaSweepRow {
  std::size_t traces;
  RpcScenario scenario;
  double accuracy;
  bool success;
};

std::vector<DpaSweepRow> dpa_trace_count_sweep(
    const ecc::Curve& curve, const ecc::Scalar& k, RpcScenario scenario,
    const std::vector<std::size_t>& trace_counts,
    const DpaConfig& config = {}, const AlgorithmicSimConfig& sim = {});

}  // namespace medsec::sidechannel
