// tvla.h — Test Vector Leakage Assessment (Welch t-test).
//
// The paper's white-box evaluation (§7) asks a yes/no question per
// countermeasure: does any time point of the trace depend on the data?
// TVLA is the standard formulation: capture one group with a *fixed*
// input and one with *random* inputs, compute Welch's t per sample, and
// flag |t| > 4.5 (the conventional 99.999% threshold) as leakage. The
// circuit-ablation bench uses this as its leakage metric.
#pragma once

#include <cstddef>
#include <vector>

#include "sidechannel/trace.h"

namespace medsec::sidechannel {

struct TvlaReport {
  std::vector<double> t_values;  ///< per time point
  double max_abs_t = 0.0;
  std::size_t points_over_threshold = 0;
  double threshold = 4.5;
  bool leaks() const { return points_over_threshold > 0; }
};

/// Welch t-test between a fixed-input group and a random-input group.
/// Traces must have equal length; unequal trailing samples are ignored.
TvlaReport tvla_fixed_vs_random(const TraceSet& fixed, const TraceSet& random,
                                double threshold = 4.5);

}  // namespace medsec::sidechannel
