// tvla.h — Test Vector Leakage Assessment (Welch t-test), streaming form.
//
// The paper's white-box evaluation (§7) asks a yes/no question per
// countermeasure: does any time point of the trace depend on the data?
// TVLA is the standard formulation: capture one group with a *fixed*
// input and one with *random* inputs, compute Welch's t per sample, and
// flag |t| > 4.5 (the conventional 99.999% threshold) as leakage. The
// circuit-ablation bench uses this as its leakage metric.
//
// The accumulator is single-pass and row-major: each trace updates every
// time point's Welford moments in one sweep (the cache-friendly
// direction — the old implementation walked the trace matrix column by
// column), and accumulators merge, so trace blocks can be reduced on a
// thread pool. Blocked accumulation with in-order merging keeps the
// t-values bit-identical for every thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "core/thread_pool.h"
#include "sidechannel/trace.h"

namespace medsec::sidechannel {

struct TvlaReport {
  std::vector<double> t_values;  ///< per time point
  double max_abs_t = 0.0;
  std::size_t points_over_threshold = 0;
  double threshold = 4.5;
  bool leaks() const { return points_over_threshold > 0; }
};

/// Streaming two-group Welford moments over every time point. add_*()
/// consumes one whole trace (samples beyond `length` are ignored;
/// shorter traces are rejected by the caller contract of equal-length
/// trace sets). Mergeable: this := this ∪ other, per point.
class TvlaAccumulator {
 public:
  TvlaAccumulator() = default;
  explicit TvlaAccumulator(std::size_t length) { reset(length); }

  void reset(std::size_t length);
  std::size_t length() const { return len_; }
  std::size_t fixed_count() const { return fixed_.n; }
  std::size_t random_count() const { return random_.n; }

  void add_fixed(const Trace& t) { fixed_.add(t, len_); }
  void add_random(const Trace& t) { random_.add(t, len_); }
  void merge(const TvlaAccumulator& o);

  TvlaReport report(double threshold = 4.5) const;

 private:
  struct Group {
    std::size_t n = 0;
    std::vector<double> mean, m2;  ///< per time point
    void add(const Trace& t, std::size_t len);
    void merge(const Group& o, std::size_t len);
  };
  std::size_t len_ = 0;
  Group fixed_, random_;
};

/// Welch t-test between a fixed-input group and a random-input group.
/// Traces must have equal length; unequal trailing samples are ignored.
/// When `pool` is given, trace blocks are accumulated in parallel; the
/// report is bit-identical with or without a pool (fixed block geometry,
/// in-order merge).
TvlaReport tvla_fixed_vs_random(const TraceSet& fixed, const TraceSet& random,
                                double threshold = 4.5,
                                core::ThreadPool* pool = nullptr);

}  // namespace medsec::sidechannel
