// timing.h — timing-attack analysis (§7, Kocher [7]).
//
// "Timing attacks exploit the timing variance with different inputs to
// provide some information about the key." The harness runs many random
// keys through an implementation, collects the runtime proxy (operation
// slots at algorithm level, clock cycles at architecture level) and
// reports (a) the runtime variance across keys and (b) the Pearson
// correlation between runtime and key Hamming weight — the statistic a
// timing adversary builds on. A protected implementation shows zero
// variance; the double-and-add baseline shows correlation ~1.
#pragma once

#include <cstddef>
#include <vector>

#include "ecc/curve.h"
#include "ecc/scalar_mult.h"

namespace medsec::sidechannel {

struct TimingReport {
  std::vector<double> runtimes;     ///< per-key runtime proxy
  std::vector<double> key_weights;  ///< per-key scalar Hamming weight
  double mean = 0.0;
  double variance = 0.0;
  double correlation_with_weight = 0.0;  ///< Pearson(runtime, HW(k))
  bool constant_time = false;            ///< variance == 0 exactly
};

/// Measure `samples` random keys under the given scalar-mult algorithm.
TimingReport timing_analysis(const ecc::Curve& curve,
                             ecc::MultAlgorithm algorithm,
                             std::size_t samples, std::uint64_t seed = 99);

}  // namespace medsec::sidechannel
