// fault_attacks.h — computational-fault adversaries against the guarded
// co-processor victim, and the guarded victim itself.
//
// The timing/power matrix (eval.h) assumes the device always computes
// correctly; these engines drop that assumption. A glitch adversary arms
// one hw::FaultSpec per execution and reads what the device *releases*:
//
//   * safe-error (select glitch): suppress one SELSET and watch whether
//     the released result is still the correct k·P. On the fully regular
//     MPL the glitched step is computationally absorbed iff the attacked
//     key bit equals the stale routing select — so correct-vs-garbage
//     releases spell out the key's bit transitions, one per shot. Scalar
//     blinding and shuffling randomize which bit a slot names; the
//     coherence check detects even absorbed glitches (a skipped SELSET is
//     one missing cycle against the compiled point_mult_cycles constant),
//     and infective computation destroys the correct/garbage oracle
//     itself.
//   * invalid-point injection (stuck-at on XP): force one bit of the base
//     register so the ladder runs on an off-curve x̃. Every released
//     faulty output the attacker can reproduce on their own device
//     confirms key residues in the small subgroups x̃ drags in (scored
//     here as the standard ~2-bits-per-confirmed-probe leak model, the
//     same ground-truth-scoring convention the DPA engines use). Scalar
//     blinding randomizes those residues per run; point validation and
//     the coherence canary catch the off-curve state before anything
//     usable leaves the device.
//
// Both engines are seeded and counter-derived: same seed, same faults,
// same verdict, any thread count.
#pragma once

#include <cstdint>
#include <optional>

#include "ecc/curve.h"
#include "hw/coprocessor.h"
#include "rng/random_source.h"
#include "sidechannel/countermeasures.h"

namespace medsec::sidechannel {

/// What the adversary observes from one (possibly faulted) execution of
/// the guarded victim.
struct VictimRelease {
  bool released = false;  ///< false: the device suppressed the result
  bool infected = false;  ///< released, but key-independent garbage
  bool detected = false;  ///< some detector tripped
  ecc::Fe x;              ///< the observed x-coordinate (when released)
  std::size_t cycles = 0; ///< executed co-processor cycles
};

/// One guarded execution of k·P on `coproc` under `cm` — the eval-matrix
/// fault victim. Applies the fault-countermeasure columns:
///   validate_points   — curve membership of the (masked) base at entry
///                       and of the recovered result at exit;
///   coherence_check   — executed cycles must equal the compiled
///                       point_mult_cycles constant, and the (X1,Z1,X2,Z2)
///                       ladder invariant must recover an on-curve point;
///   infective_computation — a tripped detector releases a random
///                       key-independent x instead of suppressing.
/// A victim with NO detector models the §5 controller without the fault
/// gate: it releases whatever the affine conversion produced, garbage
/// included. Faults are armed by the caller on `coproc` beforehand.
VictimRelease guarded_coproc_mult(const ecc::Curve& curve,
                                  const CountermeasureConfig& cm,
                                  hw::Coprocessor& coproc,
                                  const ecc::Scalar& k, const ecc::Point& p,
                                  rng::RandomSource& rng,
                                  std::optional<BaseBlindingPair>& pair,
                                  ecc::Scalar& pair_key);

struct FaultAttackResult {
  double accuracy = 0.0;    ///< recovered-bit accuracy vs ground truth
  bool key_recovered = false;  ///< every attacked bit correct
  std::size_t shots = 0;       ///< faulted executions performed
  /// Shots whose release actually leaked (matched the attacker's
  /// prediction); 0 = the oracle is dead and the attacker guessed.
  std::size_t informative_shots = 0;
};

/// Safe-error attack: one select glitch per ladder slot, slots
/// 0..bits_to_attack-1, released output compared against the device's own
/// fault-free k·P.
FaultAttackResult safe_error_attack(const ecc::Curve& curve,
                                    const CountermeasureConfig& cm,
                                    const ecc::Scalar& k,
                                    std::size_t bits_to_attack,
                                    std::uint64_t seed);

/// Invalid-point injection: stuck-at faults on XP force an off-curve x̃;
/// each released output the attacker reproduces on their own device
/// credits two key bits (CRT over the small subgroups, scored against
/// ground truth).
FaultAttackResult invalid_point_attack(const ecc::Curve& curve,
                                       const CountermeasureConfig& cm,
                                       const ecc::Scalar& k,
                                       std::size_t bits_to_attack,
                                       std::uint64_t seed);

}  // namespace medsec::sidechannel
