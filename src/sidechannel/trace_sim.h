// trace_sim.h — the modeled measurement setup of Figure 4.
//
// "Chip under study → oscilloscope → power consumption traces": we have
// two chips under study.
//
//   * The *algorithmic* backend leaks one sample per ladder iteration
//     (Hamming weight of the four working registers, register-transfer
//     granularity). It is fast enough to generate the paper's 20 000-trace
//     DPA experiments in seconds and is what the DPA benches use.
//
//   * The *cycle-accurate* backend runs the hw::Coprocessor and leaks one
//     sample per clock cycle, including the mux-control and clock-gating
//     components of §6. It is what the SPA / circuit-ablation experiments
//     use, and the tests cross-check that both backends expose the same
//     algorithm-level leakage.
//
// The victim's secret scalar is fixed across a trace set; the base point
// varies per trace and is known to the adversary (known-input DPA, the
// standard setting for ECPM attacks).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "hw/coprocessor.h"
#include "sidechannel/countermeasures.h"
#include "sidechannel/leakage.h"
#include "sidechannel/trace.h"

namespace medsec::sidechannel {

/// The three §7 scenarios for the randomized-projective-coordinates
/// countermeasure.
enum class RpcScenario {
  kDisabled,                 ///< "the countermeasure is disabled"
  kEnabledKnownRandomness,   ///< white-box: "the randomness is known"
  kEnabledSecretRandomness,  ///< normal operation
};

const char* rpc_scenario_name(RpcScenario s);

/// Everything one DPA campaign produces: what the oscilloscope captured
/// plus what the adversary legitimately knows.
struct DpaExperiment {
  TraceSet traces;                        ///< one trace per execution
  std::vector<ecc::Point> base_points;    ///< known inputs P_j
  /// Per-trace Z-randomizers; filled only in the white-box scenario.
  std::vector<std::pair<ecc::Fe, ecc::Fe>> known_randomizers;
  /// Ground truth (padded scalar bits, MSB first, leading 1) — used only
  /// to *score* attacks, never by the attack itself.
  std::vector<int> true_bits;
  RpcScenario scenario = RpcScenario::kDisabled;
};

struct AlgorithmicSimConfig {
  LeakageParams leakage;
  std::uint64_t seed = 1;  ///< drives base points, randomizers and noise
  /// TVLA-style fixed-input campaigns: use this base point for every
  /// trace instead of drawing a fresh random point per trace.
  std::optional<ecc::Point> fixed_base_point;
  /// Campaign-engine fan-out. `threads`: 0 = every hardware thread (the
  /// shared core::ThreadPool), 1 = run entirely on the calling thread,
  /// k >= 2 = exactly k runners. `lanes`: ladder lanes per trace block;
  /// 0 = auto (a small multiple — currently 4x — of the active lane
  /// backend's preferred width). Campaign output is bit-identical for
  /// every (threads, lanes) combination: trace j's randomness is derived
  /// from (seed, j) alone — counter-based seeding, not a shared stream.
  std::size_t threads = 0;
  std::size_t lanes = 0;
  /// Ladder countermeasures for the victim executions. When unset, the
  /// RpcScenario decides (kDisabled -> none, kEnabled* -> rpc_only) —
  /// the exact pre-countermeasure-subsystem behavior, bit for bit. When
  /// set, this config is authoritative for what the victim *runs*; the
  /// scenario still decides what the adversary *knows* (the white-box
  /// scenario records the Z-randomizer pairs — identity pairs when RPC
  /// is off — so the attack stays runnable against any config).
  std::optional<CountermeasureConfig> countermeasures;
  /// Draw a fresh victim scalar per trace (from the trace RNG, before
  /// every other per-trace draw) instead of the campaign-wide k — the
  /// "random group" of a fixed-vs-random TVLA campaign.
  bool randomize_scalar = false;
};

// (The per-execution trace length under a countermeasure config is
// sidechannel::hardened_trace_length in countermeasures.h.)

/// Generate `num_traces` ladder executions of secret k on random base
/// points of the curve's prime-order subgroup. This is the wide-lane
/// campaign engine: base points come from per-trace counter-seeded
/// decompression (one inversion-cheap square-root solve instead of a full
/// ladder per point), victim ladders run `lanes` at a time through
/// ladder_many with per-lane leakage taps, trace blocks fan out across
/// the thread pool, and all TraceSet storage is allocated up front.
DpaExperiment generate_dpa_traces(const ecc::Curve& curve,
                                  const ecc::Scalar& k,
                                  std::size_t num_traces,
                                  RpcScenario scenario,
                                  const AlgorithmicSimConfig& config = {});

/// The PR 2 serial path, kept verbatim as the campaign bench's baseline
/// and as a structural reference: one shared RNG stream, ladder-generated
/// base points, one scalar montgomery_ladder (with affine recovery and a
/// per-iteration observer callback) per trace. Statistically equivalent
/// to the engine but not bit-identical (different seeding discipline).
/// Scenario-only: the countermeasures / randomize_scalar extensions are
/// engine features and are ignored here.
DpaExperiment generate_dpa_traces_serial(const ecc::Curve& curve,
                                         const ecc::Scalar& k,
                                         std::size_t num_traces,
                                         RpcScenario scenario,
                                         const AlgorithmicSimConfig& config =
                                             {});

/// One cycle-accurate trace of a co-processor point multiplication,
/// together with the ground-truth records (for scoring and profiling).
struct CycleTrace {
  Trace samples;                          ///< one per clock cycle
  std::vector<hw::CycleRecord> records;   ///< aligned with samples
  std::vector<int> true_bits;
  double area_ge = 0;
};

struct CycleSimConfig {
  hw::CoprocessorConfig coproc;
  LeakageParams leakage;
  bool rpc = true;
  std::uint64_t seed = 1;
  /// Ladder countermeasures for the cycle-accurate victim; when unset,
  /// the legacy rpc flag decides (rpc-only or none). Scalar blinding runs
  /// the widened neutral-init microcode; shuffled schedules insert the
  /// co-processor's dummy jitter units at RNG-chosen boundaries.
  std::optional<CountermeasureConfig> countermeasures;
  /// Materialize the per-cycle ground-truth records in the returned
  /// CycleTrace. Sampling is sink-fused either way; records only matter
  /// to record consumers (profile_schedule, E9's record-keyed variance
  /// scan), and skipping them saves the capture's dominant allocation.
  bool keep_records = true;
  /// Pool fan-out for capture_averaged_cycle_trace: 0 = the shared
  /// core::ThreadPool, 1 = run entirely on the calling thread, k >= 2 =
  /// exactly k runners. The averaged trace is bit-identical at any value
  /// (capture-order fold, counter-derived per-capture seeds).
  std::size_t threads = 0;
};

/// One planned cycle-accurate victim execution: the co-processor inputs
/// (from the shared SecureEccProcessor planner — one draw-order
/// discipline for every cycle-accurate victim), the scoring ground
/// truth, and the derived noise seed. Shared by every sink composition:
/// the trace capture, the record capture, and the SPA feature extractor.
struct CycleVictimPlan {
  HardenedCoprocPlan plan;
  std::vector<int> true_bits;
  std::uint64_t noise_seed = 0;
};

/// Build the victim plan for one capture under `config` (validates the
/// base point; draws masks/blinds/randomizers/jitter from the capture's
/// counter-derived RNG in THE fixed order).
CycleVictimPlan plan_cycle_victim(const ecc::Curve& curve,
                                  const ecc::Scalar& k, const ecc::Point& p,
                                  const CycleSimConfig& config);

/// Capture j of an averaged sweep runs at this derived seed — ONE
/// derivation shared by the trace and SPA-feature averages (their
/// cross-equality is pinned by test).
inline std::uint64_t averaged_capture_seed(std::uint64_t base,
                                           std::size_t j) {
  return base + 0x1000 * static_cast<std::uint64_t>(j);
}

/// Run `run_block(b, e)` over the capture indices [0, n) under the
/// averaged-capture threads knob (0 = the shared core::ThreadPool, 1 =
/// the calling thread only, k >= 2 = exactly k runners), blocks of a few
/// captures per chunk so each task amortizes its co-processor. Chunk
/// geometry never affects output — every capture derives its own seed
/// and the callers fold in capture order.
void dispatch_capture_blocks(
    std::size_t n, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& run_block);

/// Run the co-processor once on (k, P) and measure every cycle. The
/// leakage-sampler sink folds leakage::cycle_sample into the execution
/// pass: samples fill in as cycles execute (storage reserved up front
/// from the compiled schedule's cycle total), and records are kept only
/// when config.keep_records asks for them.
CycleTrace capture_cycle_trace(const ecc::Curve& curve, const ecc::Scalar& k,
                               const ecc::Point& p,
                               const CycleSimConfig& config);

/// The PR 4 capture path, kept verbatim as bench_coproc's baseline and
/// as a conformance reference: materialize the full record vector through
/// the legacy point_mult, then fold it into samples in a second pass with
/// the frozen Box–Muller noise sampler. Record stream identical to
/// capture_cycle_trace's (asserted by test); samples differ only in the
/// noise sequence (Box–Muller vs the ziggurat).
CycleTrace capture_cycle_trace_reference(const ecc::Curve& curve,
                                         const ecc::Scalar& k,
                                         const ecc::Point& p,
                                         const CycleSimConfig& config);

/// Average several captures of the same (k, P): the attacker's standard
/// noise-reduction step before SPA. Captures are independent (seed + j
/// derived) and fan out across the pool per config.threads with
/// block-local reusable co-processors; the average is folded in capture
/// order, so the result is bit-identical to a serial run at any thread
/// count. The returned records are capture 0's (per config.keep_records).
CycleTrace capture_averaged_cycle_trace(const ecc::Curve& curve,
                                        const ecc::Scalar& k,
                                        const ecc::Point& p,
                                        const CycleSimConfig& config,
                                        std::size_t num_captures);

}  // namespace medsec::sidechannel
