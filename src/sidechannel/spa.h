// spa.h — Simple Power Analysis against the co-processor (§6/§7).
//
// Two concrete SPA vectors from the paper's circuit-level discussion:
//
//   * Mux-control SPA (Figure 3): the ladder's routing select lines fan
//     out to 164 multiplexers. With naive single-rail encoding the net
//     only toggles when consecutive key bits differ, so each iteration's
//     SELSET cycle shows a spike amplitude that encodes k_i xor k_{i-1} —
//     one averaged trace reads the whole key (up to the known leading 1).
//     With balanced (dual-rail) encoding the Hamming difference is
//     constant and the spikes carry no information.
//
//   * Clock-gating SPA: with data-dependent clock gating only the written
//     register's clock branch fires; layout asymmetry makes the branches
//     distinguishable, and *which* register is written at a fixed schedule
//     slot is exactly the key bit ("the mere fact that a different set of
//     registers is gated can be linked ... to the key").
//
// Both attacks include the profiling step the paper describes ("a complex
// profiling phase with an identical device that is under his total
// control"): schedule positions are learned from a profiling capture on a
// device with a known key, then applied to the victim trace.
#pragma once

#include <cstddef>
#include <vector>

#include "sidechannel/trace_sim.h"

namespace medsec::sidechannel {

/// Cycle indices of the attack's points of interest, learned by profiling.
struct LadderSchedule {
  std::vector<std::size_t> selset_cycles;  ///< one per ladder iteration
  /// Writeback cycle of the first MUL of each iteration (a cycle whose
  /// clock-gating signature distinguishes the written register).
  std::vector<std::size_t> gated_write_cycles;
};

/// Learn the schedule from a profiling capture (key-independent: the
/// schedule is a constant of the microarchitecture).
LadderSchedule profile_schedule(const CycleTrace& profiling_trace);

struct SpaResult {
  std::vector<int> recovered_bits;  ///< aligned with true_bits[1..]
  std::size_t bits_correct = 0;
  double accuracy = 0.0;  ///< 1.0 = full key read; ~0.5 = nothing
};

/// Mux-control SPA: classify the SELSET spike amplitudes into
/// "toggled"/"did not toggle", integrate the xor-chain from the known
/// leading 1. `trace` should be an averaged capture of the victim.
SpaResult mux_control_spa(const CycleTrace& trace,
                          const LadderSchedule& schedule);

/// Clock-gating SPA: classify the gated writeback amplitudes into
/// "X1-branch"/"X2-branch". Only informative when the victim runs with
/// data-dependent clock gating.
SpaResult clock_gating_spa(const CycleTrace& trace,
                           const LadderSchedule& schedule);

}  // namespace medsec::sidechannel
