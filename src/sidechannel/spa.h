// spa.h — Simple Power Analysis against the co-processor (§6/§7).
//
// Two concrete SPA vectors from the paper's circuit-level discussion:
//
//   * Mux-control SPA (Figure 3): the ladder's routing select lines fan
//     out to 164 multiplexers. With naive single-rail encoding the net
//     only toggles when consecutive key bits differ, so each iteration's
//     SELSET cycle shows a spike amplitude that encodes k_i xor k_{i-1} —
//     one averaged trace reads the whole key (up to the known leading 1).
//     With balanced (dual-rail) encoding the Hamming difference is
//     constant and the spikes carry no information.
//
//   * Clock-gating SPA: with data-dependent clock gating only the written
//     register's clock branch fires; layout asymmetry makes the branches
//     distinguishable, and *which* register is written at a fixed schedule
//     slot is exactly the key bit ("the mere fact that a different set of
//     registers is gated can be linked ... to the key").
//
// Both attacks include the profiling step the paper describes ("a complex
// profiling phase with an identical device that is under his total
// control"): schedule positions are learned from a profiling capture on a
// device with a known key, then applied to the victim trace.
//
// The feature-extractor path (SpaFeatureSink / capture_spa_features) runs
// the same attacks without ever materializing a full cycle trace: the
// sink leakage-samples every cycle (keeping the noise stream aligned with
// a full capture — POI amplitudes are bit-identical to indexing a full
// trace) but stores only the schedule's points of interest, ~163 doubles
// instead of ~86k samples + records per capture. The averaged-victim
// sweeps (E4, E9, the eval matrix's SPA cells) ride this sink.
#pragma once

#include <cstddef>
#include <vector>

#include "sidechannel/trace_sim.h"

namespace medsec::sidechannel {

/// Cycle indices of the attack's points of interest, learned by profiling.
struct LadderSchedule {
  std::vector<std::size_t> selset_cycles;  ///< one per ladder iteration
  /// Writeback cycle of the first MUL of each iteration (a cycle whose
  /// clock-gating signature distinguishes the written register).
  std::vector<std::size_t> gated_write_cycles;
};

/// Learn the schedule from a profiling capture (key-independent: the
/// schedule is a constant of the microarchitecture). The capture must
/// keep records.
LadderSchedule profile_schedule(const CycleTrace& profiling_trace);

/// The amplitudes at a schedule's points of interest — everything the two
/// SPA classifiers consume — plus the scoring ground truth.
struct SpaFeatures {
  std::vector<double> selset_amplitudes;
  std::vector<double> gated_write_amplitudes;
  std::vector<int> true_bits;  ///< ground truth, scoring only
};

/// The SPA feature-extractor sink: samples every cycle like
/// LeakageSampleSink (identical noise stream) but keeps only the POI
/// amplitudes. Schedule cycle lists must be ascending (profile_schedule
/// emits them that way).
class SpaFeatureSink final : public hw::CycleSink {
 public:
  SpaFeatureSink(const LeakageParams& p, double area_ge,
                 rng::RandomSource& noise_rng, const LadderSchedule& schedule,
                 SpaFeatures& out)
      : sampler_(p, area_ge, noise_rng), schedule_(&schedule), out_(&out) {}

  void on_cycle(const hw::CycleRecord& rec, double) override {
    const double sample = sampler_(rec);
    if (next_selset_ < schedule_->selset_cycles.size() &&
        schedule_->selset_cycles[next_selset_] == cycle_) {
      out_->selset_amplitudes.push_back(sample);
      ++next_selset_;
    }
    if (next_gated_ < schedule_->gated_write_cycles.size() &&
        schedule_->gated_write_cycles[next_gated_] == cycle_) {
      out_->gated_write_amplitudes.push_back(sample);
      ++next_gated_;
    }
    ++cycle_;
  }

 private:
  CycleSampler sampler_;
  const LadderSchedule* schedule_;
  SpaFeatures* out_;
  std::size_t cycle_ = 0;
  std::size_t next_selset_ = 0;
  std::size_t next_gated_ = 0;
};

/// One victim execution, feature-extracted at the profiled schedule.
/// Amplitudes are bit-identical to capture_cycle_trace(...).samples
/// indexed at the schedule cycles (asserted by test). Throws if the
/// schedule reaches beyond the execution (the victim's slot count is a
/// configuration constant >= the profiling device's).
SpaFeatures capture_spa_features(const ecc::Curve& curve,
                                 const ecc::Scalar& k, const ecc::Point& p,
                                 const CycleSimConfig& config,
                                 const LadderSchedule& schedule);

/// Averaged victim features over num_captures independent executions
/// (seed + j derived, pool fan-out per config.threads, capture-order
/// fold): exactly the POI amplitudes of capture_averaged_cycle_trace,
/// at a ~500x smaller memory/averaging footprint.
SpaFeatures capture_averaged_spa_features(const ecc::Curve& curve,
                                          const ecc::Scalar& k,
                                          const ecc::Point& p,
                                          const CycleSimConfig& config,
                                          const LadderSchedule& schedule,
                                          std::size_t num_captures);

struct SpaResult {
  std::vector<int> recovered_bits;  ///< aligned with true_bits[1..]
  std::size_t bits_correct = 0;
  double accuracy = 0.0;  ///< 1.0 = full key read; ~0.5 = nothing
};

/// Mux-control SPA: classify the SELSET spike amplitudes into
/// "toggled"/"did not toggle", integrate the xor-chain from the known
/// leading 1. `trace` should be an averaged capture of the victim.
SpaResult mux_control_spa(const CycleTrace& trace,
                          const LadderSchedule& schedule);
SpaResult mux_control_spa(const SpaFeatures& features);

/// Clock-gating SPA: classify the gated writeback amplitudes into
/// "X1-branch"/"X2-branch". Only informative when the victim runs with
/// data-dependent clock gating.
SpaResult clock_gating_spa(const CycleTrace& trace,
                           const LadderSchedule& schedule);
SpaResult clock_gating_spa(const SpaFeatures& features);

}  // namespace medsec::sidechannel
