#include "sidechannel/leakage.h"

#include <cmath>
#include <numbers>

namespace medsec::sidechannel {

const char* logic_style_name(LogicStyle s) {
  switch (s) {
    case LogicStyle::kCmos: return "CMOS";
    case LogicStyle::kWddl: return "WDDL";
    case LogicStyle::kSabl: return "SABL";
  }
  return "?";
}

double cycle_sample_noiseless(const LeakageParams& p,
                              const hw::CycleRecord& rec, double area_ge) {
  using hw::ActivityWeights;
  const double data =
      ActivityWeights::kRegisterBit * rec.reg_write_toggles +
      ActivityWeights::kLogicNode *
          (rec.logic_toggles + rec.bus_toggles + rec.mux_control_toggles);
  const double branch_unit =
      ActivityWeights::clock_tree_per_cycle(area_ge) / 6.0;
  double baseline = 0.0;
  for (int r = 0; r < 6; ++r)
    if (rec.clocked_reg_mask & (1u << r))
      baseline += branch_unit * (1.0 + kClockBranchSkew[r]);
  return style_power(p, data, baseline, area_ge);
}

CycleSampler::CycleSampler(const LeakageParams& p, double area_ge,
                           rng::RandomSource& noise_rng)
    : params_(p), area_ge_(area_ge), rng_(&noise_rng) {
  const double branch_unit =
      hw::ActivityWeights::clock_tree_per_cycle(area_ge) / 6.0;
  baseline_uniform_ = 0.0;
  for (int r = 0; r < 6; ++r) {
    branch_cost_[r] = branch_unit * (1.0 + kClockBranchSkew[r]);
    baseline_uniform_ += branch_cost_[r];
  }
}

double cycle_sample(const LeakageParams& p, const hw::CycleRecord& rec,
                    double area_ge, rng::RandomSource& noise_rng) {
  return cycle_sample_noiseless(p, rec, area_ge) +
         fast_gaussian(noise_rng, p.noise_sigma);
}

double gaussian(rng::RandomSource& rng, double sigma) {
  if (sigma <= 0.0) return 0.0;
  // Box–Muller on two uniforms in (0, 1].
  const double u1 =
      (static_cast<double>(rng.next_u64() >> 11) + 1.0) / 9007199254740993.0;
  const double u2 =
      static_cast<double>(rng.next_u64() >> 11) / 9007199254740992.0;
  return sigma * std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

namespace {

/// Marsaglia–Tsang ziggurat tables for the standard normal, 128 layers.
/// Built once at first use from the canonical constants (R = x_127,
/// V = the common layer area); everything below is plain IEEE double
/// arithmetic, so the sampler is deterministic for a given draw stream.
struct ZigguratTables {
  std::uint32_t kn[128];
  double wn[128];
  double fn[128];

  ZigguratTables() {
    constexpr double m1 = 2147483648.0;  // 2^31
    constexpr double vn = 9.91256303526217e-3;
    double dn = 3.442619855899;
    double tn = dn;
    const double q = vn / std::exp(-0.5 * dn * dn);
    kn[0] = static_cast<std::uint32_t>((dn / q) * m1);
    kn[1] = 0;
    wn[0] = q / m1;
    wn[127] = dn / m1;
    fn[0] = 1.0;
    fn[127] = std::exp(-0.5 * dn * dn);
    for (int i = 126; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
      kn[i + 1] = static_cast<std::uint32_t>((dn / tn) * m1);
      tn = dn;
      fn[i] = std::exp(-0.5 * dn * dn);
      wn[i] = dn / m1;
    }
  }
};

const ZigguratTables& zig_tables() {
  static const ZigguratTables t;
  return t;
}

/// Uniform double in (0, 1] from the top 53 bits of one u64 draw.
inline double uniform01(rng::RandomSource& rng) {
  return (static_cast<double>(rng.next_u64() >> 11) + 1.0) * 0x1p-53;
}

}  // namespace

double fast_gaussian(rng::RandomSource& rng, double sigma) {
  if (sigma <= 0.0) return 0.0;
  const ZigguratTables& t = zig_tables();
  constexpr double kR = 3.442619855899;  // start of the tail
  for (;;) {
    const auto hz = static_cast<std::int32_t>(rng.next_u64());
    const std::size_t iz = static_cast<std::size_t>(hz & 127);
    const auto mag = static_cast<std::uint32_t>(
        hz < 0 ? -static_cast<std::int64_t>(hz) : static_cast<std::int64_t>(hz));
    // Fast path (~98.8%): inside the layer's guaranteed rectangle.
    if (mag < t.kn[iz]) return sigma * (hz * t.wn[iz]);
    if (iz == 0) {
      // Base layer: exponential-majorized tail beyond R.
      double x, y;
      do {
        x = -std::log(uniform01(rng)) / kR;
        y = -std::log(uniform01(rng));
      } while (y + y < x * x);
      const double v = kR + x;
      return sigma * (hz > 0 ? v : -v);
    }
    // Wedge: accept against the density between the layer bounds.
    const double x = hz * t.wn[iz];
    if (t.fn[iz] + uniform01(rng) * (t.fn[iz - 1] - t.fn[iz]) <
        std::exp(-0.5 * x * x))
      return sigma * x;
    // Rejected: redraw.
  }
}

}  // namespace medsec::sidechannel
