#include "sidechannel/leakage.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "hw/activity.h"

namespace medsec::sidechannel {

const char* logic_style_name(LogicStyle s) {
  switch (s) {
    case LogicStyle::kCmos: return "CMOS";
    case LogicStyle::kWddl: return "WDDL";
    case LogicStyle::kSabl: return "SABL";
  }
  return "?";
}

double style_power(const LeakageParams& p, double data_toggles,
                   double baseline_ge, double total_area_ge) {
  switch (p.style) {
    case LogicStyle::kCmos:
      return data_toggles + baseline_ge;
    case LogicStyle::kWddl:
      // Every dual-rail gate fires once per cycle: a large constant, plus
      // the imbalance-scaled residue of the data component. Area (and the
      // constant) is ~3x the single-rail design.
      return p.dual_rail_activity * total_area_ge * hw::LogicStyleOverhead::kWddl +
             p.wddl_imbalance * data_toggles + baseline_ge;
    case LogicStyle::kSabl:
      return p.dual_rail_activity * total_area_ge * hw::LogicStyleOverhead::kSabl +
             p.sabl_imbalance * data_toggles + baseline_ge;
  }
  return 0.0;
}

double cycle_sample(const LeakageParams& p, const hw::CycleRecord& rec,
                    double area_ge, rng::RandomSource& noise_rng) {
  using hw::ActivityWeights;
  const double data =
      ActivityWeights::kRegisterBit * rec.reg_write_toggles +
      ActivityWeights::kLogicNode *
          (rec.logic_toggles + rec.bus_toggles + rec.mux_control_toggles);
  // Clock tree: each register's branch has a slightly different load
  // (§6: layout asymmetry). With uniform gating all six branches fire
  // every cycle and the skews cancel to a constant; with data-dependent
  // gating the fired subset — and hence the amplitude — identifies which
  // register was written ("the mere fact that a different set of
  // registers is gated can be linked ... directly or indirectly to the
  // key").
  // Order: X1, Z1, X2, Z2, T, XP. Skews sum to zero so the uniform-gating
  // total is exactly the nominal tree cost.
  static constexpr double kBranchSkew[6] = {+0.15, +0.05, -0.10,
                                            -0.02, +0.04, -0.12};
  const double branch_unit = ActivityWeights::clock_tree_per_cycle(area_ge) / 6.0;
  double baseline = 0.0;
  for (int r = 0; r < 6; ++r)
    if (rec.clocked_reg_mask & (1u << r))
      baseline += branch_unit * (1.0 + kBranchSkew[r]);
  return style_power(p, data, baseline, area_ge) +
         gaussian(noise_rng, p.noise_sigma);
}

double gaussian(rng::RandomSource& rng, double sigma) {
  if (sigma <= 0.0) return 0.0;
  // Box–Muller on two uniforms in (0, 1].
  const double u1 =
      (static_cast<double>(rng.next_u64() >> 11) + 1.0) / 9007199254740993.0;
  const double u2 =
      static_cast<double>(rng.next_u64() >> 11) / 9007199254740992.0;
  return sigma * std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace medsec::sidechannel
