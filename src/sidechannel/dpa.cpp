#include "sidechannel/dpa.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace medsec::sidechannel {

namespace {

using ecc::Curve;
using ecc::Fe;
using ecc::LadderState;

int hamming_weight(const Fe& v) {
  return std::popcount(v.limb(0)) + std::popcount(v.limb(1)) +
         std::popcount(v.limb(2));
}

double predict(const LadderState& s) {
  return static_cast<double>(hamming_weight(s.x1) + hamming_weight(s.z1) +
                             hamming_weight(s.x2) + hamming_weight(s.z2));
}

}  // namespace

DpaResult ladder_dpa_attack(const Curve& curve, const DpaExperiment& exp,
                            const DpaConfig& config) {
  const std::size_t n = exp.traces.traces.size();
  if (n < 4) throw std::invalid_argument("ladder_dpa_attack: too few traces");
  if (exp.base_points.size() != n)
    throw std::invalid_argument("ladder_dpa_attack: base point count");
  const bool white_box = exp.scenario == RpcScenario::kEnabledKnownRandomness;
  if (white_box && exp.known_randomizers.size() != n)
    throw std::invalid_argument("ladder_dpa_attack: randomizer count");

  const std::size_t trace_len = exp.traces.length();
  const std::size_t bits =
      config.bits_to_attack < trace_len ? config.bits_to_attack : trace_len;

  const Fe b = curve.b();

  // Per-trace attacker-side ladder state after the recovered prefix.
  // The padded scalar always starts with bit 1 (the ladder consumes bits
  // from index 1 onward), so the initial state is exactly the
  // pre-iteration state.
  std::vector<LadderState> state(n);
  for (std::size_t j = 0; j < n; ++j) {
    state[j] = ecc::ladder_initial_state(b, exp.base_points[j].x);
    if (white_box) {
      const auto& [l1, l2] = exp.known_randomizers[j];
      state[j].x1 = Fe::mul(state[j].x1, l1);
      state[j].z1 = Fe::mul(state[j].z1, l1);
      state[j].x2 = Fe::mul(state[j].x2, l2);
      state[j].z2 = Fe::mul(state[j].z2, l2);
    }
  }

  DpaResult res;
  res.recovered_bits.reserve(bits);
  std::vector<LadderState> cand0(n), cand1(n);
  std::vector<double> pred0(n), pred1(n), column(n);

  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cand0[j] = state[j];
      ecc::ladder_iteration(b, exp.base_points[j].x, cand0[j], 0);
      cand1[j] = state[j];
      ecc::ladder_iteration(b, exp.base_points[j].x, cand1[j], 1);
      pred0[j] = predict(cand0[j]);
      pred1[j] = predict(cand1[j]);
      column[j] = exp.traces.traces[j][i];
    }

    double s0 = 0, s1 = 0;
    if (config.statistic == DpaStatistic::kCpa) {
      s0 = std::abs(pearson(pred0, column));
      s1 = std::abs(pearson(pred1, column));
    } else {
      // DoM: partition traces by the predicted value of one state bit
      // (the LSB of X1 under each hypothesis) and compare group means.
      for (int hyp = 0; hyp < 2; ++hyp) {
        RunningStats g0, g1;
        for (std::size_t j = 0; j < n; ++j) {
          const LadderState& c = hyp ? cand1[j] : cand0[j];
          (c.x1.bit(0) ? g1 : g0).add(column[j]);
        }
        (hyp ? s1 : s0) = dom_z(g0, g1);
      }
    }

    const int decision = s1 > s0 ? 1 : 0;
    res.recovered_bits.push_back(decision);
    res.stat_correct_hyp.push_back(decision ? s1 : s0);
    res.stat_rejected_hyp.push_back(decision ? s0 : s1);
    for (std::size_t j = 0; j < n; ++j)
      state[j] = decision ? cand1[j] : cand0[j];
  }

  // Score (the only place ground truth is consulted). true_bits[0] is the
  // padded leading 1, consumed before iteration 0.
  for (std::size_t i = 0; i < bits; ++i)
    if (i + 1 < exp.true_bits.size() &&
        res.recovered_bits[i] == exp.true_bits[i + 1])
      ++res.bits_correct;
  res.accuracy = bits ? static_cast<double>(res.bits_correct) /
                            static_cast<double>(bits)
                      : 0.0;
  res.full_success = res.bits_correct == bits;
  return res;
}

std::vector<DpaSweepRow> dpa_trace_count_sweep(
    const Curve& curve, const ecc::Scalar& k, RpcScenario scenario,
    const std::vector<std::size_t>& trace_counts, const DpaConfig& config,
    const AlgorithmicSimConfig& sim) {
  std::vector<DpaSweepRow> rows;
  rows.reserve(trace_counts.size());
  for (const std::size_t count : trace_counts) {
    AlgorithmicSimConfig s = sim;
    s.seed = sim.seed + count;  // fresh campaign per count
    const DpaExperiment exp =
        generate_dpa_traces(curve, k, count, scenario, s);
    const DpaResult r = ladder_dpa_attack(curve, exp, config);
    rows.push_back(DpaSweepRow{count, scenario, r.accuracy, r.full_success});
  }
  return rows;
}

}  // namespace medsec::sidechannel
