#include "sidechannel/dpa.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/thread_pool.h"
#include "ecc/ladder_many.h"

namespace medsec::sidechannel {

namespace {

using ecc::Curve;
using ecc::Fe;
using ecc::LadderState;

int hamming_weight(const Fe& v) {
  return std::popcount(v.limb(0)) + std::popcount(v.limb(1)) +
         std::popcount(v.limb(2));
}

double predict(const LadderState& s) {
  return static_cast<double>(hamming_weight(s.x1) + hamming_weight(s.z1) +
                             hamming_weight(s.x2) + hamming_weight(s.z2));
}

/// Shared input validation + attacker-side initial states (the recovered
/// prefix is empty; white-box folds the known randomizers in).
std::vector<LadderState> attacker_initial_states(const Curve& curve,
                                                 const DpaExperiment& exp) {
  const std::size_t n = exp.traces.traces.size();
  if (n < 4) throw std::invalid_argument("ladder_dpa_attack: too few traces");
  if (exp.base_points.size() != n)
    throw std::invalid_argument("ladder_dpa_attack: base point count");
  if (exp.true_bits.empty())
    throw std::invalid_argument(
        "ladder_dpa_attack: experiment has no ground truth to score "
        "against (randomize_scalar campaigns are TVLA material)");
  const bool white_box = exp.scenario == RpcScenario::kEnabledKnownRandomness;
  if (white_box && exp.known_randomizers.size() != n)
    throw std::invalid_argument("ladder_dpa_attack: randomizer count");

  const Fe b = curve.b();
  std::vector<LadderState> state(n);
  for (std::size_t j = 0; j < n; ++j) {
    state[j] = ecc::ladder_initial_state(b, exp.base_points[j].x);
    if (white_box) {
      const auto& [l1, l2] = exp.known_randomizers[j];
      ecc::randomize_ladder_state(state[j], l1, l2);
    }
  }
  return state;
}

void score_result(const DpaExperiment& exp, std::size_t bits, DpaResult& res) {
  // Score (the only place ground truth is consulted). true_bits[0] is the
  // padded leading 1, consumed before iteration 0.
  for (std::size_t i = 0; i < bits; ++i)
    if (i + 1 < exp.true_bits.size() &&
        res.recovered_bits[i] == exp.true_bits[i + 1])
      ++res.bits_correct;
  res.accuracy = bits ? static_cast<double>(res.bits_correct) /
                            static_cast<double>(bits)
                      : 0.0;
  res.full_success = res.bits_correct == bits;
}

/// Per-block statistic accumulators for one target bit: CPA co-moments
/// for both hypotheses, plus the DoM partition stats.
struct BlockStats {
  PearsonAcc cpa0, cpa1;
  RunningStats dom0_lo, dom0_hi, dom1_lo, dom1_hi;
  void reset() { *this = BlockStats{}; }
};

}  // namespace

DpaResult ladder_dpa_attack(const Curve& curve, const DpaExperiment& exp,
                            const DpaConfig& config) {
  const std::size_t n = exp.traces.traces.size();
  std::vector<LadderState> state = attacker_initial_states(curve, exp);

  const std::size_t trace_len = exp.traces.length();
  const std::size_t bits =
      config.bits_to_attack < trace_len ? config.bits_to_attack : trace_len;

  const Fe b = curve.b();

  // Candidate states for both hypotheses, all traces — written by the
  // blocked extension, swapped into `state` once the bit is decided.
  std::vector<LadderState> cand0(n), cand1(n);

  // Fixed reduction geometry: kBlock traces per accumulator block, merged
  // in block order. Lane width and thread count never change the values.
  constexpr std::size_t kBlock = 256;
  const std::size_t blocks = (n + kBlock - 1) / kBlock;
  std::vector<BlockStats> acc(blocks);

  const std::size_t lanes =
      config.lanes ? config.lanes
                   : 4 * gf2m::active_lane_vtable()->preferred_width;
  std::unique_ptr<core::ThreadPool> own;
  core::ThreadPool* pool =
      n > kBlock ? core::ThreadPool::for_config(config.threads, own) : nullptr;

  DpaResult res;
  res.recovered_bits.reserve(bits);

  for (std::size_t i = 0; i < bits; ++i) {
    auto extend_block = [&](std::size_t b0, std::size_t b1) {
      // Reusable per-worker lane scratch (sized on first use, kept
      // across bits and blocks).
      thread_local ecc::LadderLanes st;
      thread_local ecc::LaneLadderScratch scr;
      thread_local ecc::LaneBatch xd, blanes, xa, za, xd0, zd0, xd1, zd1;

      for (std::size_t blk = b0; blk < b1; ++blk) {
        const std::size_t lo = blk * kBlock;
        const std::size_t hi = std::min(n, lo + kBlock);
        BlockStats& bs = acc[blk];
        bs.reset();

        for (std::size_t g0 = lo; g0 < hi; g0 += lanes) {
          const std::size_t gn = std::min(lanes, hi - g0);
          if (st.lanes() != gn) {
            st.resize(gn);
            scr.resize(gn);
            xd.resize(gn);
            blanes.resize(gn);
            xa.resize(gn);
            za.resize(gn);
            xd0.resize(gn);
            zd0.resize(gn);
            xd1.resize(gn);
            zd1.resize(gn);
            blanes.fill(b);  // constant across the attack; refill on resize
          }
          for (std::size_t l = 0; l < gn; ++l) {
            const LadderState& s = state[g0 + l];
            st.x1.set(l, s.x1);
            st.z1.set(l, s.z1);
            st.x2.set(l, s.x2);
            st.z2.set(l, s.z2);
            xd.set(l, exp.base_points[g0 + l].x);
          }

          // The differential add is swap-symmetric, so both hypotheses
          // share it; only the doubling differs (hyp 0 doubles the low
          // accumulator, hyp 1 the high one). One add + two doublings
          // replaces the reference path's two full ladder iterations.
          ecc::ladder_add_lanes(xd, st.x1, st.z1, st.x2, st.z2, xa, za, scr);
          ecc::ladder_double_lanes(blanes, st.x1, st.z1, xd0, zd0, scr);
          ecc::ladder_double_lanes(blanes, st.x2, st.z2, xd1, zd1, scr);

          for (std::size_t l = 0; l < gn; ++l) {
            const std::size_t j = g0 + l;
            cand0[j] = LadderState{xd0.get(l), zd0.get(l), xa.get(l),
                                   za.get(l)};
            cand1[j] = LadderState{xa.get(l), za.get(l), xd1.get(l),
                                   zd1.get(l)};
            const double sample = exp.traces.traces[j][i];
            if (config.statistic == DpaStatistic::kCpa) {
              const double shared_hw = xa.hamming_weight(l) +
                                       za.hamming_weight(l);
              const double p0 = shared_hw + xd0.hamming_weight(l) +
                                zd0.hamming_weight(l);
              const double p1 = shared_hw + xd1.hamming_weight(l) +
                                zd1.hamming_weight(l);
              bs.cpa0.add(p0, sample);
              bs.cpa1.add(p1, sample);
            } else {
              // DoM partitions on the predicted LSB of X1 per hypothesis.
              (cand0[j].x1.bit(0) ? bs.dom0_hi : bs.dom0_lo).add(sample);
              (cand1[j].x1.bit(0) ? bs.dom1_hi : bs.dom1_lo).add(sample);
            }
          }
        }
      }
    };

    if (pool != nullptr)
      pool->parallel_for(blocks, 1, extend_block);
    else
      extend_block(0, blocks);

    // In-order merge, then the bit decision — identical for any fan-out.
    double s0 = 0, s1 = 0;
    if (config.statistic == DpaStatistic::kCpa) {
      PearsonAcc m0, m1;
      for (const BlockStats& bsa : acc) {
        m0.merge(bsa.cpa0);
        m1.merge(bsa.cpa1);
      }
      s0 = std::abs(m0.correlation());
      s1 = std::abs(m1.correlation());
    } else {
      RunningStats g0l, g0h, g1l, g1h;
      for (const BlockStats& bsa : acc) {
        g0l.merge(bsa.dom0_lo);
        g0h.merge(bsa.dom0_hi);
        g1l.merge(bsa.dom1_lo);
        g1h.merge(bsa.dom1_hi);
      }
      s0 = dom_z(g0l, g0h);
      s1 = dom_z(g1l, g1h);
    }

    const int decision = s1 > s0 ? 1 : 0;
    res.recovered_bits.push_back(decision);
    res.stat_correct_hyp.push_back(decision ? s1 : s0);
    res.stat_rejected_hyp.push_back(decision ? s0 : s1);
    std::swap(state, decision ? cand1 : cand0);
  }

  score_result(exp, bits, res);
  return res;
}

DpaResult ladder_dpa_attack_reference(const Curve& curve,
                                      const DpaExperiment& exp,
                                      const DpaConfig& config) {
  const std::size_t n = exp.traces.traces.size();
  std::vector<LadderState> state = attacker_initial_states(curve, exp);

  const std::size_t trace_len = exp.traces.length();
  const std::size_t bits =
      config.bits_to_attack < trace_len ? config.bits_to_attack : trace_len;

  const Fe b = curve.b();

  DpaResult res;
  res.recovered_bits.reserve(bits);
  std::vector<LadderState> cand0(n), cand1(n);
  std::vector<double> pred0(n), pred1(n), column(n);

  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cand0[j] = state[j];
      ecc::ladder_iteration(b, exp.base_points[j].x, cand0[j], 0);
      cand1[j] = state[j];
      ecc::ladder_iteration(b, exp.base_points[j].x, cand1[j], 1);
      pred0[j] = predict(cand0[j]);
      pred1[j] = predict(cand1[j]);
      column[j] = exp.traces.traces[j][i];
    }

    double s0 = 0, s1 = 0;
    if (config.statistic == DpaStatistic::kCpa) {
      s0 = std::abs(pearson(pred0, column));
      s1 = std::abs(pearson(pred1, column));
    } else {
      // DoM: partition traces by the predicted value of one state bit
      // (the LSB of X1 under each hypothesis) and compare group means.
      for (int hyp = 0; hyp < 2; ++hyp) {
        RunningStats g0, g1;
        for (std::size_t j = 0; j < n; ++j) {
          const LadderState& c = hyp ? cand1[j] : cand0[j];
          (c.x1.bit(0) ? g1 : g0).add(column[j]);
        }
        (hyp ? s1 : s0) = dom_z(g0, g1);
      }
    }

    const int decision = s1 > s0 ? 1 : 0;
    res.recovered_bits.push_back(decision);
    res.stat_correct_hyp.push_back(decision ? s1 : s0);
    res.stat_rejected_hyp.push_back(decision ? s0 : s1);
    for (std::size_t j = 0; j < n; ++j)
      state[j] = decision ? cand1[j] : cand0[j];
  }

  score_result(exp, bits, res);
  return res;
}

std::vector<DpaSweepRow> dpa_trace_count_sweep(
    const Curve& curve, const ecc::Scalar& k, RpcScenario scenario,
    const std::vector<std::size_t>& trace_counts, const DpaConfig& config,
    const AlgorithmicSimConfig& sim) {
  std::vector<DpaSweepRow> rows;
  rows.reserve(trace_counts.size());
  for (const std::size_t count : trace_counts) {
    AlgorithmicSimConfig s = sim;
    s.seed = sim.seed + count;  // fresh campaign per count
    const DpaExperiment exp =
        generate_dpa_traces(curve, k, count, scenario, s);
    const DpaResult r = ladder_dpa_attack(curve, exp, config);
    rows.push_back(DpaSweepRow{count, scenario, r.accuracy, r.full_success});
  }
  return rows;
}

}  // namespace medsec::sidechannel
