// leakage.h — how switching activity becomes observable power.
//
// §6's core physics: "During the 0→1 transition at the output, a CMOS gate
// consumes power from the source, which is not the case for 0→0, 1→1 or
// 1→0 transitions. This asymmetry is what enables the attacker." Dual-rail
// dynamic styles (SABL, WDDL) force exactly one transition per gate per
// cycle, making consumption data-independent up to layout imbalance — the
// residual the paper's white-box evaluation found ("slight unbalances are
// still present in the layout").
//
// The leakage model maps a cycle's (or iteration's) switching events to a
// power sample:  sample = style(data_dependent) + constant + N(0, sigma).
//
// Two noise samplers coexist:
//   * gaussian() — Box–Muller. The campaign engine's per-trace noise
//     stream (generate_dpa_traces phase 3) is pinned bit for bit by the
//     checked-in golden-vector digests, so this sampler is frozen.
//   * fast_gaussian() — Marsaglia–Tsang ziggurat, ~6x cheaper. The
//     cycle-accurate capture path draws ~10^5 noise samples per trace
//     (one per clock cycle), which made Box–Muller alone a third of the
//     capture cost; cycle_sample and the fused sinks draw from this one.
//     Both sides of any exact-equality comparison must use the same
//     sampler — the ziggurat consumes a variable number of u64 draws.
//
// CycleSampler/LeakageSampleSink fuse the record→sample conversion into
// the co-processor's execution pass (hw::CycleSink): samples appear as
// cycles execute, and nothing needs a materialized record vector.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/activity.h"
#include "hw/coprocessor.h"
#include "hw/gates.h"
#include "rng/random_source.h"
#include "sidechannel/trace.h"

namespace medsec::sidechannel {

enum class LogicStyle {
  kCmos,  ///< standard cells: power tracks data toggles 1:1
  kWddl,  ///< dual-rail precharge, synthesizable (Tiri et al. [19])
  kSabl,  ///< sense-amplifier based logic, full custom
};

const char* logic_style_name(LogicStyle s);

struct LeakageParams {
  LogicStyle style = LogicStyle::kCmos;
  /// Residual data-dependence of the balanced styles due to layout
  /// imbalance (fraction of the data-dependent component that still
  /// reaches the trace). WDDL routes dual rails with ordinary P&R, so it
  /// is less balanced than hand-crafted SABL.
  double wddl_imbalance = 0.05;
  double sabl_imbalance = 0.015;
  /// Gaussian measurement + environmental noise, in GE-toggle units.
  double noise_sigma = 350.0;
  /// Per-gate constant dynamic cost of the dual-rail styles (they burn
  /// one transition per gate per cycle, data or not).
  double dual_rail_activity = 1.0;
};

/// Convert a data-dependent toggle count to the observable (pre-noise)
/// sample under the given logic style. `baseline_ge` is the cycle's
/// data-independent floor (clock tree, sequencer). Inline: this runs
/// once per modeled clock cycle inside the fused sinks.
inline double style_power(const LeakageParams& p, double data_toggles,
                          double baseline_ge, double total_area_ge) {
  switch (p.style) {
    case LogicStyle::kCmos:
      return data_toggles + baseline_ge;
    case LogicStyle::kWddl:
      // Every dual-rail gate fires once per cycle: a large constant, plus
      // the imbalance-scaled residue of the data component. Area (and the
      // constant) is ~3x the single-rail design.
      return p.dual_rail_activity * total_area_ge *
                 hw::LogicStyleOverhead::kWddl +
             p.wddl_imbalance * data_toggles + baseline_ge;
    case LogicStyle::kSabl:
      return p.dual_rail_activity * total_area_ge *
                 hw::LogicStyleOverhead::kSabl +
             p.sabl_imbalance * data_toggles + baseline_ge;
  }
  return 0.0;
}

/// Per-register clock-branch load skew (§6: layout asymmetry). With
/// uniform gating all six branches fire every cycle and the skews cancel
/// to a constant; with data-dependent gating the fired subset — and hence
/// the amplitude — identifies which register was written ("the mere fact
/// that a different set of registers is gated can be linked ... directly
/// or indirectly to the key"). Order: X1, Z1, X2, Z2, T, XP; skews sum to
/// zero so the uniform-gating total is exactly the nominal tree cost.
inline constexpr double kClockBranchSkew[6] = {+0.15, +0.05, -0.10,
                                               -0.02, +0.04, -0.12};

/// The deterministic (pre-noise) part of a cycle sample: data component
/// weighted per activity.h, plus the skewed clock-tree baseline of the
/// branches that fired.
double cycle_sample_noiseless(const LeakageParams& p,
                              const hw::CycleRecord& rec, double area_ge);

/// Full sample from a co-processor cycle record (adds fast_gaussian
/// noise).
double cycle_sample(const LeakageParams& p, const hw::CycleRecord& rec,
                    double area_ge, rng::RandomSource& noise_rng);

/// Gaussian sample via Box–Muller from a uniform RandomSource. Frozen:
/// the campaign golden vectors pin this sampler's draw-for-draw output.
double gaussian(rng::RandomSource& rng, double sigma);

/// Gaussian sample via the Marsaglia–Tsang ziggurat (128 layers) — the
/// cycle-path noise sampler. Exactly N(0, sigma), deterministic for a
/// given RandomSource stream; consumes one u64 per draw in ~98.8% of
/// draws (more in the wedge/tail rejection cases).
double fast_gaussian(rng::RandomSource& rng, double sigma);

/// Precomputed cycle→sample converter: cycle_sample with the per-branch
/// clock costs and the uniform-gating baseline hoisted out of the loop.
/// operator() is bit-identical to cycle_sample(p, rec, area_ge, rng) —
/// asserted by test.
class CycleSampler {
 public:
  CycleSampler(const LeakageParams& p, double area_ge,
               rng::RandomSource& noise_rng);

  double operator()(const hw::CycleRecord& rec) {
    double baseline;
    if (rec.clocked_reg_mask == 0x3F) {
      baseline = baseline_uniform_;
    } else {
      baseline = 0.0;
      for (int r = 0; r < 6; ++r)
        if (rec.clocked_reg_mask & (1u << r)) baseline += branch_cost_[r];
    }
    const double data =
        hw::ActivityWeights::kRegisterBit * rec.reg_write_toggles +
        hw::ActivityWeights::kLogicNode *
            (rec.logic_toggles + rec.bus_toggles + rec.mux_control_toggles);
    return style_power(params_, data, baseline, area_ge_) +
           fast_gaussian(*rng_, params_.noise_sigma);
  }

 private:
  LeakageParams params_;
  double area_ge_;
  rng::RandomSource* rng_;
  double branch_cost_[6];
  double baseline_uniform_;
};

/// The leakage-sampler sink: fuses cycle_sample into the execution pass.
/// One sample per executed cycle is appended to `out` (reserve it from
/// Coprocessor::point_mult_cycles); when `records` is non-null the raw
/// record stream is materialized alongside, bit-identical to RecordSink.
class LeakageSampleSink final : public hw::CycleSink {
 public:
  LeakageSampleSink(const LeakageParams& p, double area_ge,
                    rng::RandomSource& noise_rng, Trace& out,
                    std::vector<hw::CycleRecord>* records = nullptr)
      : sampler_(p, area_ge, noise_rng), out_(&out), records_(records) {}

  void on_cycle(const hw::CycleRecord& rec, double) override {
    out_->push_back(sampler_(rec));
    if (records_) records_->push_back(rec);
  }

 private:
  CycleSampler sampler_;
  Trace* out_;
  std::vector<hw::CycleRecord>* records_;
};

}  // namespace medsec::sidechannel
