// leakage.h — how switching activity becomes observable power.
//
// §6's core physics: "During the 0→1 transition at the output, a CMOS gate
// consumes power from the source, which is not the case for 0→0, 1→1 or
// 1→0 transitions. This asymmetry is what enables the attacker." Dual-rail
// dynamic styles (SABL, WDDL) force exactly one transition per gate per
// cycle, making consumption data-independent up to layout imbalance — the
// residual the paper's white-box evaluation found ("slight unbalances are
// still present in the layout").
//
// The leakage model maps a cycle's (or iteration's) switching events to a
// power sample:  sample = style(data_dependent) + constant + N(0, sigma).
#pragma once

#include <cstdint>

#include "hw/coprocessor.h"
#include "rng/random_source.h"

namespace medsec::sidechannel {

enum class LogicStyle {
  kCmos,  ///< standard cells: power tracks data toggles 1:1
  kWddl,  ///< dual-rail precharge, synthesizable (Tiri et al. [19])
  kSabl,  ///< sense-amplifier based logic, full custom
};

const char* logic_style_name(LogicStyle s);

struct LeakageParams {
  LogicStyle style = LogicStyle::kCmos;
  /// Residual data-dependence of the balanced styles due to layout
  /// imbalance (fraction of the data-dependent component that still
  /// reaches the trace). WDDL routes dual rails with ordinary P&R, so it
  /// is less balanced than hand-crafted SABL.
  double wddl_imbalance = 0.05;
  double sabl_imbalance = 0.015;
  /// Gaussian measurement + environmental noise, in GE-toggle units.
  double noise_sigma = 350.0;
  /// Per-gate constant dynamic cost of the dual-rail styles (they burn
  /// one transition per gate per cycle, data or not).
  double dual_rail_activity = 1.0;
};

/// Convert a data-dependent toggle count to the observable (pre-noise)
/// sample under the given logic style. `baseline_ge` is the cycle's
/// data-independent floor (clock tree, sequencer).
double style_power(const LeakageParams& p, double data_toggles,
                   double baseline_ge, double total_area_ge);

/// Full sample from a co-processor cycle record (adds noise).
double cycle_sample(const LeakageParams& p, const hw::CycleRecord& rec,
                    double area_ge, rng::RandomSource& noise_rng);

/// Gaussian sample via Box–Muller from a uniform RandomSource.
double gaussian(rng::RandomSource& rng, double sigma);

}  // namespace medsec::sidechannel
