// trace.h — power traces and the statistics the attacks are built from.
//
// A trace is the modeled oscilloscope output of Figure 4: one power sample
// per time point (iteration-granular for the algorithmic backend,
// cycle-granular for the co-processor backend). The statistics here are
// the ones the paper's "statistical analysis (MATLAB)" box performs:
// means, variances, Pearson correlation (CPA), difference of means (DPA),
// and Welch's t (TVLA leakage assessment).
#pragma once

#include <cstddef>
#include <vector>

namespace medsec::sidechannel {

using Trace = std::vector<double>;

/// A set of traces with equal length plus the per-trace public data the
/// attacker knows (indices into whatever the experiment associates).
struct TraceSet {
  std::vector<Trace> traces;
  std::size_t length() const {
    return traces.empty() ? 0 : traces.front().size();
  }
};

/// Running mean/variance (Welford). Numerically stable for long traces.
/// Mergeable (Chan et al. pairwise update), so trace blocks can be
/// accumulated on different threads and combined in a fixed order — the
/// streaming analysis path's determinism contract.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  /// Fold another accumulator into this one (this := this ∪ o).
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    const double d = o.mean_ - mean_;
    m2_ += o.m2_ + d * d * na * nb / nt;
    mean_ += d * nb / nt;
    n_ += o.n_;
  }
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Single-pass Pearson accumulator: Welford means plus running central
/// co-moments (Cxx, Cyy, Cxy). The CPA engine feeds it one
/// (prediction, sample) pair at a time — no column vectors, no second
/// pass — and merges per-block accumulators in block order, which keeps
/// the correlation bit-identical regardless of thread count.
class PearsonAcc {
 public:
  void add(double x, double y) {
    ++n_;
    const double inv_n = 1.0 / static_cast<double>(n_);
    const double dx = x - mx_;
    const double dy = y - my_;
    mx_ += dx * inv_n;
    my_ += dy * inv_n;
    cxx_ += dx * (x - mx_);
    cyy_ += dy * (y - my_);
    cxy_ += dx * (y - my_);
  }
  void merge(const PearsonAcc& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    const double dx = o.mx_ - mx_;
    const double dy = o.my_ - my_;
    const double w = na * nb / nt;
    cxx_ += o.cxx_ + dx * dx * w;
    cyy_ += o.cyy_ + dy * dy * w;
    cxy_ += o.cxy_ + dx * dy * w;
    mx_ += dx * nb / nt;
    my_ += dy * nb / nt;
    n_ += o.n_;
  }
  std::size_t count() const { return n_; }
  /// Pearson r; 0 if degenerate (constant series or n < 2).
  double correlation() const;

 private:
  std::size_t n_ = 0;
  double mx_ = 0.0, my_ = 0.0;
  double cxx_ = 0.0, cyy_ = 0.0, cxy_ = 0.0;
};

/// Pearson correlation between two equal-length series; 0 if degenerate.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Welch's t statistic between two sample groups; 0 if degenerate.
double welch_t(const RunningStats& a, const RunningStats& b);
/// Welch's t from already-reduced moments (the streaming TVLA path).
double welch_t(std::size_t na, double mean_a, double var_a, std::size_t nb,
               double mean_b, double var_b);

/// Difference-of-means DPA statistic: |mean(group1) - mean(group0)|
/// normalized by the pooled standard error (a z-score).
double dom_z(const RunningStats& g0, const RunningStats& g1);

}  // namespace medsec::sidechannel
