// trace.h — power traces and the statistics the attacks are built from.
//
// A trace is the modeled oscilloscope output of Figure 4: one power sample
// per time point (iteration-granular for the algorithmic backend,
// cycle-granular for the co-processor backend). The statistics here are
// the ones the paper's "statistical analysis (MATLAB)" box performs:
// means, variances, Pearson correlation (CPA), difference of means (DPA),
// and Welch's t (TVLA leakage assessment).
#pragma once

#include <cstddef>
#include <vector>

namespace medsec::sidechannel {

using Trace = std::vector<double>;

/// A set of traces with equal length plus the per-trace public data the
/// attacker knows (indices into whatever the experiment associates).
struct TraceSet {
  std::vector<Trace> traces;
  std::size_t length() const {
    return traces.empty() ? 0 : traces.front().size();
  }
};

/// Running mean/variance (Welford). Numerically stable for long traces.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Pearson correlation between two equal-length series; 0 if degenerate.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Welch's t statistic between two sample groups; 0 if degenerate.
double welch_t(const RunningStats& a, const RunningStats& b);

/// Difference-of-means DPA statistic: |mean(group1) - mean(group0)|
/// normalized by the pooled standard error (a z-score).
double dom_z(const RunningStats& g0, const RunningStats& g1);

}  // namespace medsec::sidechannel
