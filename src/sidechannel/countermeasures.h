// countermeasures.h — the pluggable ladder-hardening layer (§7 and the
// classic DPA-countermeasure canon applied to the paper's co-processor).
//
// The paper evaluates one algorithm-level defense (randomized projective
// coordinates) against one attack (DPA). This layer generalizes that into
// a configuration: every knob is an independent switch so the evaluation
// engine (eval.h) can run the full attack × countermeasure matrix and
// show, statistically, which defenses hold:
//
//   * randomize_projective — §7's RPC: (X, Z) *= l per accumulator, fresh
//     l each execution. Breaks the adversary's state prediction unless
//     the randomness is known (white-box).
//   * scalar_blinding — Coron's first countermeasure: run the ladder on
//     k' = k + r·n (n = group order, r fresh). k' acts on any subgroup
//     point exactly like k, but every execution walks a different bit
//     pattern, so per-iteration statistics never accumulate on one key.
//     Needs the *widened* fixed-length ladder (ecc::
//     montgomery_ladder_fixed_raw / ladder_many_wide_into): bitlen(k')
//     varies with r, and padding by iteration count — not by value —
//     keeps the trace length a configuration constant.
//   * base_point_blinding — Coron's third countermeasure: multiply
//     P' = P + R instead of P and correct with the precomputed pair
//     (R, S = k·R): k·P = k·P' − S. The pair is updated by doubling
//     after every use so consecutive executions never share a mask.
//   * shuffle_schedule — randomized dummy-iteration scheduling, the
//     algorithmic answer to the §6 SPA vectors: a fixed number of decoy
//     ladder iterations (on an unrelated decoy state) are interleaved at
//     random positions, so a profiled schedule position no longer names
//     a fixed key bit and averaged traces smear. The *total* iteration
//     count stays constant — countermeasures must not reintroduce the
//     timing channel the MPL closed.
//
// HardenedLadder runs one x-only scalar multiplication under a config;
// the campaign engine (trace_sim) mirrors the same transformations
// through the wide lane layer so attack evaluation runs at full campaign
// throughput.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "hw/coprocessor.h"
#include "rng/random_source.h"

namespace medsec::sidechannel {

/// One switch per algorithm-level countermeasure. Defaults are all-off
/// (the attackable strawman); presets below name the interesting corners
/// of the evaluation matrix.
struct CountermeasureConfig {
  bool randomize_projective = false;  ///< §7 RPC
  bool scalar_blinding = false;       ///< k' = k + r·n
  unsigned scalar_blind_bits = 32;    ///< width of r, 1..64
  bool base_point_blinding = false;   ///< P' = P + R, pair-corrected
  bool shuffle_schedule = false;      ///< random dummy-iteration placement
  unsigned dummy_iterations = 16;     ///< decoy slots per execution

  // Fault-attack countermeasures (the detection/response column family).
  // Detection alone changes *when* a result is withheld; infective
  // computation changes *what* leaves the device when detection trips.
  /// On-the-fly curve-membership validation: the (masked) base point is
  /// checked at ladder entry and the recovered result at exit. Catches
  /// invalid-point/twist injection; blind to absorbed safe errors.
  bool validate_points = false;
  /// Coherence check on the ladder run: the (X1,Z1,X2,Z2) invariant must
  /// recover an on-curve point AND the executed cycle count must equal
  /// the compiled point_mult_cycles constant. The cycle half is what
  /// catches computationally-absorbed glitches (a skipped SELSET is one
  /// missing cycle even when the math comes out right).
  bool coherence_check = false;
  /// Infective computation: when a detector trips, the device releases a
  /// key-independent random result instead of branching on detection —
  /// the release/suppress oracle the safe-error attack reads disappears.
  /// Requires at least one detector (validate_points or coherence_check).
  bool infective_computation = false;

  bool any() const {
    return randomize_projective || scalar_blinding || base_point_blinding ||
           shuffle_schedule || validate_points || coherence_check ||
           infective_computation;
  }

  /// Any fault detector armed?
  bool detects_faults() const { return validate_points || coherence_check; }

  /// Stable matrix-row label, e.g. "none", "rpc", "validate+cohere+infect".
  std::string name() const;

  static CountermeasureConfig none() { return {}; }
  static CountermeasureConfig rpc_only();
  static CountermeasureConfig scalar_blinded();
  static CountermeasureConfig full();
  /// Detection-only fault hardening: entry/exit validation + coherence.
  static CountermeasureConfig validated();
  /// The fault-hardened flagship: both detectors + infective response.
  static CountermeasureConfig infective();
};

/// k' = (k mod n) + r·n over the group order n: acts like k on every
/// point of order n, walks a fresh bit pattern per execution. The new
/// bigint::add_scaled helper widens the sum so no bit of r is lost.
ecc::WideScalar blind_scalar(const ecc::Curve& curve, const ecc::Scalar& k,
                             std::uint64_t r);

/// Fresh blind of `blind_bits` (1..64) significant bits.
std::uint64_t draw_blind(rng::RandomSource& rng, unsigned blind_bits);

/// Fixed ladder length covering every possible k + r·n at this blind
/// width: order bits + blind_bits + 1 — a configuration constant, never a
/// function of the key or the blind.
std::size_t blinded_ladder_iterations(const ecc::Curve& curve,
                                      unsigned blind_bits);

/// Adversary-visible slots per hardened execution — THE length formula
/// (classic 163 / blinded order+blind+1 real iterations, plus the dummy
/// slots when shuffling). HardenedLadder::trace_length and the campaign
/// engine both delegate here.
std::size_t hardened_trace_length(const ecc::Curve& curve,
                                  const CountermeasureConfig& cm);

/// Coron base-point blinding state: the precomputed update pair
/// (R, S = k·R) for a fixed secret k. update() doubles both halves so the
/// mask changes every execution while k·P = k·(P+R) − S keeps holding.
class BaseBlindingPair {
 public:
  /// Provision a pair for secret k: R = t·G for fresh nonzero t, S = k·R.
  /// (Provisioning-time work: one ladder for R, one for S.)
  static BaseBlindingPair create(const ecc::Curve& curve,
                                 const ecc::Scalar& k,
                                 rng::RandomSource& rng);

  const ecc::Point& mask() const { return r_; }        ///< R
  const ecc::Point& correction() const { return s_; }  ///< S = k·R

  /// (R, S) <- (2R, 2S): still a valid pair for the same k.
  void update(const ecc::Curve& curve);

 private:
  ecc::Point r_;
  ecc::Point s_;
};

/// MSB-first bit expansion: out = bits [first_bit-1 .. 0] of v. The
/// padded-scalar callers pass first_bit = bit_length()-1 (the ladder
/// consumes the leading 1 as its initial state); the wide/blinded
/// callers pass the fixed iteration count (leading zeros included) — one
/// implementation of that boundary for every countermeasure path.
template <typename Int, typename Big>
void unpack_bits_msb(const Big& v, std::size_t first_bit,
                     std::vector<Int>& out) {
  out.clear();
  out.reserve(first_bit);
  for (std::size_t i = first_bit; i-- > 0;)
    out.push_back(static_cast<Int>(v.bit(i) ? 1 : 0));
}

/// The co-processor view of one hardened multiplication: the masked base
/// point, the encoded (possibly blinded / neutral-init) key bits, and
/// the microcode options (Z-randomizers + schedule-jitter units).
struct HardenedCoprocPlan {
  ecc::Point base;
  std::vector<int> key_bits;
  hw::PointMultOptions options;
};

/// Build the co-processor plan for (k, p) under `cm`, drawing from `rng`
/// in THE fixed order — pair provisioning (create / rekey through
/// `pair`/`pair_key`), blind, Z-randomizers, jitter schedule. This is
/// the single implementation behind both cycle-accurate victims
/// (core::SecureEccProcessor::Session and capture_cycle_trace), so the
/// determinism contract cannot drift between them. When base blinding is
/// on, the caller owns the correction: subtract pair->correction() from
/// the result, then pair->update().
HardenedCoprocPlan plan_hardened_coproc_mult(
    const ecc::Curve& curve, const CountermeasureConfig& cm,
    const ecc::Scalar& k, const ecc::Point& p, rng::RandomSource& rng,
    std::optional<BaseBlindingPair>& pair, ecc::Scalar& pair_key);

/// The shuffled-schedule ladder core, shared by HardenedLadder::mult and
/// the campaign simulator: runs the real iteration sequence `real_bits`
/// (MSB first; zero_start selects ladder_zero_state for wide/blinded
/// scalars) interleaved with `dummy_iterations` decoy iterations at
/// rng-chosen positions. The decoy state is built from a random x (and
/// Z-randomized too when `randomizers` is set, so decoy and real slots
/// stay indistinguishable); rng draws, in order: decoy x, [decoy l1, l2],
/// then per-slot schedule/bit draws. The observer sees the registers
/// written at every slot — decoy registers on decoy slots — with
/// bit_index counting down from total-1. Returns the final *real* state.
ecc::LadderState shuffled_ladder_raw(
    const ecc::Curve& curve, const ecc::Point& base,
    const std::vector<std::uint8_t>& real_bits, bool zero_start,
    const std::optional<std::pair<ecc::Fe, ecc::Fe>>& randomizers,
    unsigned dummy_iterations, rng::RandomSource& rng,
    const ecc::LadderObserver& observer);

/// One hardened x-only scalar multiplication engine. Owns the per-key
/// base-blinding pair (rebuilt when the key changes); every other piece
/// of randomness is drawn from the RandomSource passed per call, in a
/// fixed order — (pair provisioning), blind r, Z-randomizers, decoy
/// point, dummy schedule — so a caller that supplies a counter-seeded
/// per-trace RNG gets fully deterministic campaigns.
///
/// Not thread-safe (the pair mutates); use one instance per session, the
/// same discipline as core::SecureEccProcessor::Session.
///
/// Base-point blinding is a fixed-key countermeasure: the pair amortizes
/// across executions of one k. Driving mult() with fresh ephemeral
/// scalars (the protocol-machine wiring) re-provisions the pair — two
/// extra ladders — every call; that cost is the configuration's, not a
/// bug, but prefer rpc/blind/shuffle-only configs for ephemeral-scalar
/// flows.
class HardenedLadder {
 public:
  HardenedLadder(const ecc::Curve& curve, const CountermeasureConfig& config);

  const CountermeasureConfig& config() const { return config_; }

  /// Observer callbacks per multiplication — the adversary-visible trace
  /// length. A configuration constant: 163 classic / 163+blind_bits+1
  /// blinded, plus dummy_iterations when shuffling.
  std::size_t trace_length() const;

  /// Modeled RNG consumption of one mult (for the §4 energy ledgers):
  /// Z-randomizers, blind, decoy state and schedule draws. Blinding-pair
  /// provisioning is excluded (amortized device state, not per-mult) —
  /// callers ledger it via last_mult_provisioned_pair().
  std::size_t rng_bits_per_mult() const;

  /// True when the previous mult() had to (re)provision the base-blinding
  /// pair: two hidden point multiplications plus a 163-bit scalar draw.
  /// Ephemeral-scalar flows (the protocol machines) hit this on every
  /// call; their energy ledgers must charge it.
  bool last_mult_provisioned_pair() const { return last_mult_provisioned_; }

  /// Validated-input k·P under the configured countermeasures. The
  /// observer sees the registers written at every schedule slot (decoy
  /// slots deliver the decoy registers — that is the point).
  ecc::Point mult(const ecc::Scalar& k, const ecc::Point& p,
                  rng::RandomSource& rng,
                  const ecc::LadderObserver& observer = {});

 private:
  const ecc::Curve* curve_;
  CountermeasureConfig config_;
  std::optional<BaseBlindingPair> pair_;
  ecc::Scalar pair_key_{};
  bool last_mult_provisioned_ = false;
};

}  // namespace medsec::sidechannel
