#include "sidechannel/countermeasures.h"

#include <stdexcept>
#include <vector>

namespace medsec::sidechannel {

namespace {

using ecc::Curve;
using ecc::Fe;
using ecc::LadderObservation;
using ecc::LadderState;
using ecc::Point;
using ecc::Scalar;
using ecc::WideScalar;

using ecc::random_nonzero_fe;

/// (Re)provision the per-key blinding pair and mask P -> P + R — the one
/// implementation behind HardenedLadder::mult and the co-processor
/// planner (same pair lifecycle, same remask-on-degenerate policy).
/// Returns p unchanged when base blinding is off.
Point masked_base_point(const Curve& curve, const CountermeasureConfig& cm,
                        const Scalar& k, const Point& p,
                        rng::RandomSource& rng,
                        std::optional<BaseBlindingPair>& pair,
                        Scalar& pair_key, bool* provisioned = nullptr) {
  if (provisioned != nullptr) *provisioned = false;
  if (!cm.base_point_blinding) return p;
  if (!pair || !(pair_key == k)) {
    pair = BaseBlindingPair::create(curve, k, rng);
    pair_key = k;
    if (provisioned != nullptr) *provisioned = true;
  }
  // P == −R or a masked point with x == 0 (probability ~2^-162) is
  // remasked by one pair update.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Point base = curve.add(p, pair->mask());
    if (!base.infinity && !base.x.is_zero()) return base;
    pair->update(curve);
  }
  throw std::logic_error("countermeasures: degenerate masked base point");
}

}  // namespace

std::string CountermeasureConfig::name() const {
  if (!any()) return "none";
  std::string s;
  const auto append = [&s](const char* part) {
    if (!s.empty()) s += '+';
    s += part;
  };
  if (randomize_projective) append("rpc");
  if (scalar_blinding) append("blind");
  if (base_point_blinding) append("base");
  if (shuffle_schedule) append("shuffle");
  if (validate_points) append("validate");
  if (coherence_check) append("cohere");
  if (infective_computation) append("infect");
  return s;
}

CountermeasureConfig CountermeasureConfig::rpc_only() {
  CountermeasureConfig c;
  c.randomize_projective = true;
  return c;
}

CountermeasureConfig CountermeasureConfig::scalar_blinded() {
  CountermeasureConfig c;
  c.scalar_blinding = true;
  return c;
}

CountermeasureConfig CountermeasureConfig::full() {
  CountermeasureConfig c;
  c.randomize_projective = true;
  c.scalar_blinding = true;
  c.base_point_blinding = true;
  c.shuffle_schedule = true;
  return c;
}

CountermeasureConfig CountermeasureConfig::validated() {
  CountermeasureConfig c;
  c.validate_points = true;
  c.coherence_check = true;
  return c;
}

CountermeasureConfig CountermeasureConfig::infective() {
  CountermeasureConfig c;
  c.validate_points = true;
  c.coherence_check = true;
  c.infective_computation = true;
  // Infective garbage must be unpredictable to the adversary too: pair
  // the response with RPC + blinding so the randomized output draws on
  // the same masked execution the detectors protect.
  c.randomize_projective = true;
  c.scalar_blinding = true;
  return c;
}

WideScalar blind_scalar(const Curve& curve, const Scalar& k, std::uint64_t r) {
  return add_scaled(k.mod(curve.order()), r, curve.order());
}

std::uint64_t draw_blind(rng::RandomSource& rng, unsigned blind_bits) {
  if (blind_bits == 0 || blind_bits > 64)
    throw std::invalid_argument("draw_blind: blind_bits must be 1..64");
  const std::uint64_t v = rng.next_u64();
  return blind_bits == 64 ? v : v & ((std::uint64_t{1} << blind_bits) - 1);
}

std::size_t blinded_ladder_iterations(const Curve& curve,
                                      unsigned blind_bits) {
  // k' = k + r·n < (2^blind_bits + 1)·n < 2^(blind_bits + bitlen(n) + 1).
  return curve.order().bit_length() + blind_bits + 1;
}

std::size_t hardened_trace_length(const Curve& curve,
                                  const CountermeasureConfig& cm) {
  const std::size_t real =
      cm.scalar_blinding
          ? blinded_ladder_iterations(curve, cm.scalar_blind_bits)
          : curve.order().bit_length();
  return real + (cm.shuffle_schedule ? cm.dummy_iterations : 0);
}

BaseBlindingPair BaseBlindingPair::create(const Curve& curve, const Scalar& k,
                                          rng::RandomSource& rng) {
  BaseBlindingPair pair;
  const Scalar t = rng.uniform_nonzero(curve.order());
  pair.r_ = ecc::montgomery_ladder(curve, t, curve.base_point());
  pair.s_ = ecc::montgomery_ladder(curve, k.mod(curve.order()), pair.r_);
  return pair;
}

void BaseBlindingPair::update(const Curve& curve) {
  r_ = curve.dbl(r_);
  s_ = curve.dbl(s_);
}

HardenedCoprocPlan plan_hardened_coproc_mult(
    const Curve& curve, const CountermeasureConfig& cm, const Scalar& k,
    const Point& p, rng::RandomSource& rng,
    std::optional<BaseBlindingPair>& pair, Scalar& pair_key) {
  HardenedCoprocPlan plan;

  // Base-point blinding first (fixed draw order: pair, blind,
  // Z-randomizers, jitter schedule).
  plan.base = masked_base_point(curve, cm, k, p, rng, pair, pair_key);

  // Scalar encoding: constant-length recoding, widened to the fixed
  // blinded length (neutral-init microcode) when scalar blinding is on —
  // the blind must never show in the iteration count.
  if (cm.scalar_blinding) {
    const WideScalar wide =
        blind_scalar(curve, k, draw_blind(rng, cm.scalar_blind_bits));
    unpack_bits_msb(wide, blinded_ladder_iterations(curve,
                                                    cm.scalar_blind_bits),
                    plan.key_bits);
    plan.options.neutral_init = true;
  } else {
    const Scalar padded = ecc::constant_length_scalar(curve, k);
    // The co-processor consumes the full padded scalar (leading 1
    // included — its init phase consumes it, see Coprocessor::point_mult).
    unpack_bits_msb(padded, padded.bit_length(), plan.key_bits);
  }

  if (cm.randomize_projective)
    plan.options.z_randomizers = {random_nonzero_fe(rng),
                                  random_nonzero_fe(rng)};

  if (cm.shuffle_schedule) {
    const std::size_t iterations = plan.options.neutral_init
                                       ? plan.key_bits.size()
                                       : plan.key_bits.size() - 1;
    plan.options.dummy_ops.reserve(cm.dummy_iterations);
    for (unsigned d = 0; d < cm.dummy_iterations; ++d) {
      const std::uint64_t word = rng.next_u64();
      plan.options.dummy_ops.push_back(hw::PointMultOptions::DummyOp{
          static_cast<std::uint16_t>(word % (iterations + 1)),
          static_cast<std::uint8_t>((word >> 32) & 1)});
    }
  }
  return plan;
}

LadderState shuffled_ladder_raw(
    const Curve& curve, const Point& base,
    const std::vector<std::uint8_t>& real_bits, bool zero_start,
    const std::optional<std::pair<Fe, Fe>>& randomizers,
    unsigned dummy_iterations, rng::RandomSource& rng,
    const ecc::LadderObserver& observer) {
  if (base.infinity || base.x.is_zero())
    throw std::invalid_argument("shuffled_ladder_raw: bad base point");
  const Fe b = curve.b();
  const Fe x = base.x;

  LadderState real =
      zero_start ? ecc::ladder_zero_state(x) : ecc::ladder_initial_state(b, x);
  if (randomizers) {
    if (randomizers->first.is_zero() || randomizers->second.is_zero())
      throw std::invalid_argument("shuffled_ladder_raw: zero randomizer");
    ecc::randomize_ladder_state(real, randomizers->first,
                                randomizers->second);
  }

  // Decoy state from an unrelated random x; Z-randomized under the same
  // policy as the real state so the two register banks look alike.
  const Fe decoy_x = random_nonzero_fe(rng);
  LadderState decoy = ecc::ladder_initial_state(b, decoy_x);
  if (randomizers) {
    const Fe l1 = random_nonzero_fe(rng);  // draw order is the contract:
    const Fe l2 = random_nonzero_fe(rng);  // never inline into the call
    ecc::randomize_ladder_state(decoy, l1, l2);
  }

  const std::size_t total = real_bits.size() + dummy_iterations;
  std::size_t dummies_left = dummy_iterations;
  std::size_t next_real = 0;
  const bool has_observer = static_cast<bool>(observer);
  for (std::size_t s = 0; s < total; ++s) {
    // Sequential sampling (Knuth's algorithm S): every placement of the
    // D decoys among the `total` slots is equally likely.
    const std::size_t slots_left = total - s;
    const bool is_dummy =
        dummies_left > 0 && rng.uniform(slots_left) < dummies_left;
    std::uint64_t bit;
    LadderState* st;
    const Fe* xd;
    if (is_dummy) {
      --dummies_left;
      bit = rng.next_u64() & 1;
      st = &decoy;
      xd = &decoy_x;
    } else {
      bit = real_bits[next_real++];
      st = &real;
      xd = &x;
    }
    ecc::ladder_iteration(b, *xd, *st, bit);
    if (has_observer) {
      observer(LadderObservation{
          .bit_index = total - 1 - s,
          .key_bit = static_cast<int>(bit),
          .x1 = st->x1,
          .z1 = st->z1,
          .x2 = st->x2,
          .z2 = st->z2,
      });
    }
  }
  return real;
}

HardenedLadder::HardenedLadder(const Curve& curve,
                               const CountermeasureConfig& config)
    : curve_(&curve), config_(config) {
  if (config_.scalar_blinding &&
      (config_.scalar_blind_bits == 0 || config_.scalar_blind_bits > 64))
    throw std::invalid_argument("HardenedLadder: scalar_blind_bits 1..64");
}

std::size_t HardenedLadder::trace_length() const {
  return hardened_trace_length(*curve_, config_);
}

std::size_t HardenedLadder::rng_bits_per_mult() const {
  std::size_t bits = 0;
  if (config_.randomize_projective) bits += 2 * 163;
  if (config_.scalar_blinding) bits += config_.scalar_blind_bits;
  if (config_.shuffle_schedule) {
    bits += 163;  // decoy x
    if (config_.randomize_projective) bits += 2 * 163;  // decoy randomizers
    // One schedule decision per slot plus one decoy bit per dummy; the
    // ledger models the entropy consumed, not the raw u64 draws.
    bits += trace_length() + config_.dummy_iterations;
  }
  return bits;
}

Point HardenedLadder::mult(const Scalar& k, const Point& p,
                           rng::RandomSource& rng,
                           const ecc::LadderObserver& observer) {
  if (p.infinity) return Point::at_infinity();

  // Base-point blinding first (fixed draw order: pair, blind,
  // Z-randomizers, decoy/schedule).
  const Point base = masked_base_point(*curve_, config_, k, p, rng, pair_,
                                       pair_key_, &last_mult_provisioned_);

  // Scalar blinding second.
  std::optional<WideScalar> wide;
  std::size_t wide_iters = 0;
  if (config_.scalar_blinding) {
    const std::uint64_t r = draw_blind(rng, config_.scalar_blind_bits);
    wide = blind_scalar(*curve_, k, r);
    wide_iters = blinded_ladder_iterations(*curve_, config_.scalar_blind_bits);
  }

  Point out;
  if (!config_.shuffle_schedule) {
    ecc::LadderOptions lo;
    if (config_.randomize_projective) {
      lo.randomize_z = true;
      lo.rng = &rng;
    }
    lo.observer = observer;
    out = wide ? ecc::montgomery_ladder_fixed(*curve_, *wide, wide_iters,
                                              base, lo)
               : ecc::montgomery_ladder(*curve_, k, base, lo);
  } else {
    // Shuffled schedule: draw the real randomizers here (fixed order:
    // blind, then Z-randomizers, then the core's decoy/schedule draws),
    // then hand off to the shared slot engine.
    std::optional<std::pair<Fe, Fe>> rands;
    if (config_.randomize_projective)
      rands = std::make_pair(random_nonzero_fe(rng), random_nonzero_fe(rng));

    std::vector<std::uint8_t> real_bits;
    if (wide) {
      unpack_bits_msb(*wide, wide_iters, real_bits);
    } else {
      const Scalar padded = ecc::constant_length_scalar(*curve_, k);
      unpack_bits_msb(padded, padded.bit_length() - 1, real_bits);
    }

    const LadderState real = shuffled_ladder_raw(
        *curve_, base, real_bits, /*zero_start=*/wide.has_value(), rands,
        config_.dummy_iterations, rng, observer);
    out = ecc::recover_from_ladder(*curve_, base, real.x1, real.z1, real.x2,
                                   real.z2);
  }

  // Undo the base mask with the precomputed correction, then refresh the
  // pair so the next execution wears a different mask.
  if (config_.base_point_blinding) {
    out = curve_->add(out, curve_->negate(pair_->correction()));
    pair_->update(*curve_);
  }
  return out;
}

}  // namespace medsec::sidechannel
