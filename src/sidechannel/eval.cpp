#include "sidechannel/eval.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

#include "gf2m/backend.h"
#include "rng/xoshiro.h"
#include "sidechannel/dpa.h"
#include "sidechannel/fault_attacks.h"
#include "sidechannel/spa.h"
#include "sidechannel/trace_sim.h"
#include "sidechannel/tvla.h"

namespace medsec::sidechannel {

namespace {

using ecc::Curve;
using ecc::Scalar;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Attacker knowledge per attack: the white-box CPA sees the
/// Z-randomizers; everything else attacks the victim's actual config.
RpcScenario scenario_for(EvalAttack attack, const CountermeasureConfig& cm) {
  if (attack == EvalAttack::kCpaWhiteBox)
    return RpcScenario::kEnabledKnownRandomness;
  return cm.randomize_projective ? RpcScenario::kEnabledSecretRandomness
                                 : RpcScenario::kDisabled;
}

/// Per-countermeasure-row campaign cache: CPA and DoM attack the same
/// scenario's experiment, and the break sweep revisits the same budgets
/// per attack — generation (the dominant cost) runs once per
/// (scenario, trace count) instead of once per cell probe.
class CampaignCache {
 public:
  CampaignCache(const Curve& curve, const Scalar& k,
                const CountermeasureConfig& cm, const EvalConfig& cfg)
      : curve_(&curve), k_(&k), cm_(&cm), cfg_(&cfg) {}

  const DpaExperiment& get(RpcScenario scenario, std::size_t traces) {
    const auto key = std::make_pair(static_cast<int>(scenario), traces);
    auto it = campaigns_.find(key);
    if (it == campaigns_.end()) {
      AlgorithmicSimConfig simc;
      // The cache owns seed derivation so a budget can never be generated
      // under two different seeds: the main budget runs at config.seed,
      // every other budget at config.seed + traces (the historical sweep
      // discipline of dpa_trace_count_sweep).
      simc.seed = traces == cfg_->traces ? cfg_->seed : cfg_->seed + traces;
      simc.threads = cfg_->threads;
      simc.countermeasures = *cm_;
      it = campaigns_
               .emplace(key, generate_dpa_traces(*curve_, *k_, traces,
                                                 scenario, simc))
               .first;
    }
    return it->second;
  }

 private:
  const Curve* curve_;
  const Scalar* k_;
  const CountermeasureConfig* cm_;
  const EvalConfig* cfg_;
  std::map<std::pair<int, std::size_t>, DpaExperiment> campaigns_;
};

DpaResult run_recovery(const Curve& curve, CampaignCache& cache,
                       const CountermeasureConfig& cm, EvalAttack attack,
                       std::size_t traces, const EvalConfig& cfg) {
  const DpaExperiment& exp = cache.get(scenario_for(attack, cm), traces);
  DpaConfig dc;
  dc.bits_to_attack = cfg.bits_to_attack;
  dc.threads = cfg.threads;
  dc.statistic =
      attack == EvalAttack::kDom ? DpaStatistic::kDom : DpaStatistic::kCpa;
  return ladder_dpa_attack(curve, exp, dc);
}

TvlaReport run_tvla(const Curve& curve, const Scalar& k,
                    const CountermeasureConfig& cm, const EvalConfig& cfg) {
  const auto group = [&](bool fixed, std::uint64_t seed) {
    AlgorithmicSimConfig simc;
    simc.seed = seed;
    simc.threads = cfg.threads;
    simc.countermeasures = cm;
    simc.fixed_base_point = curve.base_point();
    simc.randomize_scalar = !fixed;
    return generate_dpa_traces(curve, k, cfg.tvla_traces_per_group,
                               cm.randomize_projective
                                   ? RpcScenario::kEnabledSecretRandomness
                                   : RpcScenario::kDisabled,
                               simc)
        .traces;
  };
  return tvla_fixed_vs_random(group(true, cfg.seed ^ 0xF1DE'F1DEull),
                              group(false, cfg.seed ^ 0x5EED'5EEDull));
}

/// One SPA cell: the §6 vectors against the row's ladder defense on a
/// worst-case circuit. The profiling device is the attacker's own
/// (known key, no ladder countermeasures, same leaky circuit); the
/// victim is averaged through the SPA feature-extractor sink, so the
/// cell never materializes a cycle trace.
void run_spa_cell(const Curve& curve, const Scalar& k,
                  const CountermeasureConfig& cm, const EvalConfig& cfg,
                  EvalCell& cell) {
  CycleSimConfig leaky;
  leaky.coproc.secure.balanced_mux_encoding = false;
  leaky.coproc.secure.uniform_clock_gating = false;
  leaky.leakage.noise_sigma = 100.0;
  leaky.rpc = false;
  leaky.threads = cfg.threads;

  // Profiling phase on a device under the attacker's control, running
  // the SAME countermeasure configuration as the victim (the config is
  // public; only its per-execution randomness is not). This keeps the
  // schedule aligned — a defense only gets credit for smearing the
  // positions (shuffle) or decorrelating the read bits (blinding), never
  // for an init-length offset the attacker would trivially re-profile.
  rng::Xoshiro256 prof_rng(cfg.seed ^ 0x5Ca5'CA5C'A5CA'5CA5ull);
  CycleSimConfig prof = leaky;
  prof.seed = cfg.seed ^ 0xBEEF'0001ull;
  prof.countermeasures = cm;
  const LadderSchedule schedule = profile_schedule(capture_cycle_trace(
      curve, prof_rng.uniform_nonzero(curve.order()), curve.base_point(),
      prof));

  // Victim: same circuit, the row's ladder countermeasures, fresh
  // randomness per averaged capture.
  CycleSimConfig victim = leaky;
  victim.countermeasures = cm;
  victim.seed = cfg.seed ^ 0xBEEF'0002ull;
  const SpaFeatures features = capture_averaged_spa_features(
      curve, k, curve.base_point(), victim, schedule, cfg.spa_captures);

  const SpaResult mux = mux_control_spa(features);
  const SpaResult gating = clock_gating_spa(features);
  cell.traces = cfg.spa_captures;
  cell.accuracy = std::max(mux.accuracy, gating.accuracy);
  cell.key_recovered = cell.accuracy >= 0.99;
  cell.defense_holds = !cell.key_recovered;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

const char* eval_attack_name(EvalAttack a) {
  switch (a) {
    case EvalAttack::kCpaKnownInput: return "cpa";
    case EvalAttack::kCpaWhiteBox: return "cpa-whitebox";
    case EvalAttack::kDom: return "dom";
    case EvalAttack::kTvla: return "tvla";
    case EvalAttack::kSpa: return "spa";
    case EvalAttack::kFaultSafeError: return "fault-safe-error";
    case EvalAttack::kFaultInvalidPoint: return "fault-invalid-point";
  }
  return "?";
}

EvalConfig EvalConfig::standard() {
  EvalConfig cfg;
  cfg.countermeasures.push_back(CountermeasureConfig::none());
  cfg.countermeasures.push_back(CountermeasureConfig::rpc_only());
  cfg.countermeasures.push_back(CountermeasureConfig::scalar_blinded());
  CountermeasureConfig base;
  base.base_point_blinding = true;
  cfg.countermeasures.push_back(base);
  CountermeasureConfig shuffle;
  shuffle.shuffle_schedule = true;
  cfg.countermeasures.push_back(shuffle);
  cfg.countermeasures.push_back(CountermeasureConfig::full());
  // Fault-countermeasure rows: validation alone (still falls to the
  // safe-error oracle), both detectors, detectors + infective response.
  CountermeasureConfig validate;
  validate.validate_points = true;
  cfg.countermeasures.push_back(validate);
  cfg.countermeasures.push_back(CountermeasureConfig::validated());
  cfg.countermeasures.push_back(CountermeasureConfig::infective());
  cfg.attacks = {EvalAttack::kCpaKnownInput, EvalAttack::kCpaWhiteBox,
                 EvalAttack::kDom,           EvalAttack::kTvla,
                 EvalAttack::kSpa,           EvalAttack::kFaultSafeError,
                 EvalAttack::kFaultInvalidPoint};
  cfg.traces = 400;
  cfg.bits_to_attack = 12;
  cfg.seed = 2024;
  return cfg;
}

void EvalConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("EvalConfig::validate: " + what);
  };
  if (countermeasures.empty()) fail("no countermeasure rows");
  if (attacks.empty()) fail("no attacks");
  for (const EvalAttack a : attacks) {
    switch (a) {
      case EvalAttack::kCpaKnownInput:
      case EvalAttack::kCpaWhiteBox:
      case EvalAttack::kDom:
      case EvalAttack::kTvla:
      case EvalAttack::kSpa:
      case EvalAttack::kFaultSafeError:
      case EvalAttack::kFaultInvalidPoint:
        break;
      default:
        fail("unknown attack id " +
             std::to_string(static_cast<int>(a)) +
             " (known: cpa, cpa-whitebox, dom, tvla, spa, "
             "fault-safe-error, fault-invalid-point)");
    }
  }
  for (const std::string& name : lane_backends) {
    if (name != "scalar" && name != "bitsliced" && name != "clmul")
      fail("unknown lane backend '" + name +
           "' (known: scalar, bitsliced, clmul)");
  }
  for (const CountermeasureConfig& cm : countermeasures) {
    if (cm.infective_computation && !cm.detects_faults())
      fail("row '" + cm.name() +
           "': infective computation requires a detector "
           "(validate_points or coherence_check)");
    if (cm.scalar_blinding &&
        (cm.scalar_blind_bits == 0 || cm.scalar_blind_bits > 64))
      fail("row '" + cm.name() + "': scalar_blind_bits " +
           std::to_string(cm.scalar_blind_bits) + " outside 1..64");
    if (cm.shuffle_schedule && cm.dummy_iterations == 0)
      fail("row '" + cm.name() +
           "': shuffle_schedule with zero dummy_iterations");
  }
  if (traces == 0) fail("traces must be positive");
  if (bits_to_attack == 0) fail("bits_to_attack must be positive");
  if (tvla_traces_per_group < 2 &&
      std::find(attacks.begin(), attacks.end(), EvalAttack::kTvla) !=
          attacks.end())
    fail("tvla_traces_per_group must be at least 2");
  if (spa_captures == 0 &&
      std::find(attacks.begin(), attacks.end(), EvalAttack::kSpa) !=
          attacks.end())
    fail("spa_captures must be positive");
}

EvalMatrix run_eval_matrix(const Curve& curve, const Scalar& k,
                           const EvalConfig& config) {
  config.validate();

  // Resolve the lane-backend sweep: named backends that are actually
  // available, or the single active one.
  struct LaneChoice {
    gf2m::LaneBackend backend;
    std::string name;
  };
  std::vector<LaneChoice> lanes;
  if (config.lane_backends.empty()) {
    lanes.push_back({gf2m::active_lane_backend(),
                     gf2m::lane_backend_name(gf2m::active_lane_backend())});
  } else {
    for (const std::string& name : config.lane_backends) {
      gf2m::LaneBackend b;
      if (name == "scalar") b = gf2m::LaneBackend::kLaneScalar;
      else if (name == "bitsliced") b = gf2m::LaneBackend::kLaneBitsliced;
      else if (name == "clmul") b = gf2m::LaneBackend::kLaneClmulWide;
      else
        throw std::invalid_argument("run_eval_matrix: unknown lane backend '" +
                                    name +
                                    "' (known: scalar, bitsliced, clmul)");
      if (gf2m::lane_backend_available(b)) lanes.push_back({b, name});
    }
    if (lanes.empty())
      throw std::invalid_argument(
          "run_eval_matrix: no requested lane backend is available");
  }

  // Restore the process-global lane dispatch even if a cell throws —
  // otherwise every later field-lane operation in the process silently
  // runs on whichever backend the grid died on.
  struct LaneRestore {
    gf2m::LaneBackend backend;
    ~LaneRestore() { gf2m::set_lane_backend(backend); }
  } restore{gf2m::active_lane_backend()};

  EvalMatrix out;
  out.cells.reserve(lanes.size() * config.countermeasures.size() *
                    config.attacks.size());

  for (const LaneChoice& lane : lanes) {
    gf2m::set_lane_backend(lane.backend);
    for (const CountermeasureConfig& cm : config.countermeasures) {
      CampaignCache cache(curve, k, cm, config);
      for (const EvalAttack attack : config.attacks) {
        const auto t0 = std::chrono::steady_clock::now();
        EvalCell cell;
        cell.attack = eval_attack_name(attack);
        cell.countermeasure = cm.name();
        cell.lane_backend = lane.name;

        if (attack == EvalAttack::kTvla) {
          cell.traces = 2 * config.tvla_traces_per_group;
          const TvlaReport rep = run_tvla(curve, k, cm, config);
          cell.tvla_max_t = rep.max_abs_t;
          cell.tvla_leaks = rep.leaks();
          cell.defense_holds = !rep.leaks();
        } else if (attack == EvalAttack::kSpa) {
          run_spa_cell(curve, k, cm, config, cell);
        } else if (attack == EvalAttack::kFaultSafeError ||
                   attack == EvalAttack::kFaultInvalidPoint) {
          // Fault cells are per-shot, not per-trace: bits_to_attack
          // glitched executions against the guarded victim. The verdict
          // is key recovery alone — a handful of coin guesses landing
          // right is chance, not a broken defense.
          const FaultAttackResult r =
              attack == EvalAttack::kFaultSafeError
                  ? safe_error_attack(curve, cm, k, config.bits_to_attack,
                                      config.seed)
                  : invalid_point_attack(curve, cm, k, config.bits_to_attack,
                                         config.seed);
          cell.traces = r.shots;
          cell.accuracy = r.accuracy;
          cell.key_recovered = r.key_recovered;
          cell.informative_shots = r.informative_shots;
          cell.defense_holds = !r.key_recovered;
        } else {
          cell.traces = config.traces;
          const DpaResult r = run_recovery(curve, cache, cm, attack,
                                           config.traces, config);
          cell.accuracy = r.accuracy;
          cell.key_recovered = r.full_success;
          // Traces-to-break sweep: the smallest budget in the sweep that
          // recovers every attacked bit (0 = the sweep never broke it).
          for (const std::size_t n : config.break_sweep) {
            const DpaResult rs =
                run_recovery(curve, cache, cm, attack, n, config);
            if (rs.full_success) {
              cell.traces_to_break = n;
              break;
            }
          }
          // The verdict folds in BOTH probes: a defense that fell to the
          // main run or to any sweep budget did not hold — the JSON must
          // never say "holds" and "broken at N traces" in one cell.
          cell.defense_holds =
              !cell.key_recovered && cell.traces_to_break == 0;
        }
        cell.seconds = seconds_since(t0);
        out.cells.push_back(std::move(cell));
      }
    }
  }
  return out;
}

std::string EvalMatrix::to_json() const {
  std::string s = "{\"schema\":\"medsec-eval-matrix-v1\",\"cells\":[";
  bool first = true;
  char buf[224];
  for (const EvalCell& c : cells) {
    if (!first) s.push_back(',');
    first = false;
    s += "{\"attack\":\"";
    append_json_escaped(s, c.attack);
    s += "\",\"countermeasure\":\"";
    append_json_escaped(s, c.countermeasure);
    s += "\",\"lane_backend\":\"";
    append_json_escaped(s, c.lane_backend);
    std::snprintf(buf, sizeof(buf),
                  "\",\"traces\":%zu,\"accuracy\":%.6f,"
                  "\"key_recovered\":%s,\"traces_to_break\":%zu,"
                  "\"tvla_max_t\":%.6f,\"tvla_leaks\":%s,"
                  "\"informative_shots\":%zu,"
                  "\"seconds\":%.3f,\"defense_holds\":%s}",
                  c.traces, c.accuracy, c.key_recovered ? "true" : "false",
                  c.traces_to_break, c.tvla_max_t,
                  c.tvla_leaks ? "true" : "false", c.informative_shots,
                  c.seconds, c.defense_holds ? "true" : "false");
    s += buf;
  }
  s += "]}";
  return s;
}

bool EvalMatrix::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace medsec::sidechannel
