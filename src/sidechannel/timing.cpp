#include "sidechannel/timing.h"

#include "rng/xoshiro.h"
#include "sidechannel/trace.h"

namespace medsec::sidechannel {

TimingReport timing_analysis(const ecc::Curve& curve,
                             ecc::MultAlgorithm algorithm,
                             std::size_t samples, std::uint64_t seed) {
  rng::Xoshiro256 rng(seed);
  rng::Xoshiro256 rpc_rng(seed ^ 0xFEED);
  TimingReport rep;
  rep.runtimes.reserve(samples);
  rep.key_weights.reserve(samples);
  RunningStats stats;

  for (std::size_t i = 0; i < samples; ++i) {
    const ecc::Scalar k = rng.uniform_nonzero(curve.order());
    int weight = 0;
    for (std::size_t b = 0; b < k.bit_length(); ++b)
      if (k.bit(b)) ++weight;

    ecc::MultStats ms;
    ecc::MultOptions opt;
    opt.algorithm = algorithm;
    opt.stats = &ms;
    if (algorithm == ecc::MultAlgorithm::kLadderRpc) opt.rng = &rpc_rng;
    ecc::scalar_mult(curve, k, curve.base_point(), opt);

    rep.runtimes.push_back(static_cast<double>(ms.op_slots));
    rep.key_weights.push_back(static_cast<double>(weight));
    stats.add(static_cast<double>(ms.op_slots));
  }

  rep.mean = stats.mean();
  rep.variance = stats.variance();
  rep.correlation_with_weight = pearson(rep.runtimes, rep.key_weights);
  rep.constant_time = rep.variance == 0.0;
  return rep;
}

}  // namespace medsec::sidechannel
