#include "sidechannel/trace_sim.h"

#include <bit>
#include <memory>
#include <stdexcept>

#include "core/thread_pool.h"
#include "ecc/ladder_many.h"
#include "hw/activity.h"
#include "rng/xoshiro.h"

namespace medsec::sidechannel {

namespace {

using ecc::Curve;
using ecc::Fe;
using ecc::Point;
using ecc::Scalar;

int hamming_weight(const Fe& v) {
  return std::popcount(v.limb(0)) + std::popcount(v.limb(1)) +
         std::popcount(v.limb(2));
}

using ecc::random_nonzero_fe;

/// Counter-based per-trace seeding: trace j's randomness is a pure
/// function of (seed, j), so the campaign's output cannot depend on how
/// traces are grouped into lanes or scheduled onto threads.
std::uint64_t trace_seed(std::uint64_t seed, std::uint64_t j) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (j + 1));
  return rng::splitmix64(s);
}
constexpr std::uint64_t kNoiseSalt = 0xA5A5'5A5A'C0DE'F00Dull;

/// One random point of the prime-order subgroup with x != 0, drawn from
/// this trace's private RNG. Decompression + one doubling: pick a random
/// x, solve the curve equation via the half-trace (succeeds for half the
/// field), then double the point — the doubling image 2E *is* the
/// prime-order subgroup for these cofactor-2 curves. Two inversions per
/// candidate instead of the full 162-iteration ladder the serial path
/// pays per base point.
Point random_subgroup_point(const Curve& c, rng::RandomSource& rng) {
  for (;;) {
    bigint::U192 v;
    for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
    const Fe x = Fe::from_bits(v);
    if (x.is_zero()) continue;
    const int y_bit = static_cast<int>(rng.next_u64() & 1);
    const auto p = c.decompress({x, y_bit});
    if (!p) continue;
    const Point q = c.dbl(*p);
    if (q.infinity || q.x.is_zero()) continue;
    return q;
  }
}

std::vector<int> padded_bits_of(const Curve& c, const Scalar& k) {
  const Scalar padded = ecc::constant_length_scalar(c, k);
  std::vector<int> bits;
  bits.reserve(padded.bit_length());
  for (std::size_t i = padded.bit_length(); i-- > 0;)
    bits.push_back(padded.bit(i) ? 1 : 0);
  return bits;
}

/// Random points via the ladder (the PR 2 path, kept for the serial
/// baseline): projective ladder raw + one shared batch inversion.
std::vector<Point> random_subgroup_points_ladder(const Curve& c,
                                                 rng::RandomSource& rng,
                                                 std::size_t n) {
  std::vector<Point> out;
  out.reserve(n);
  while (out.size() < n) {
    const std::size_t want = n - out.size();
    std::vector<Point> bases(want, c.base_point());
    std::vector<ecc::LadderState> states;
    states.reserve(want);
    for (std::size_t i = 0; i < want; ++i)
      states.push_back(ecc::montgomery_ladder_raw(
          c, rng.uniform_nonzero(c.order()), c.base_point()));
    for (const Point& p : ecc::recover_from_ladder_batch(c, bases, states))
      if (!p.infinity && !p.x.is_zero()) out.push_back(p);
  }
  return out;
}

}  // namespace

const char* rpc_scenario_name(RpcScenario s) {
  switch (s) {
    case RpcScenario::kDisabled:
      return "RPC disabled";
    case RpcScenario::kEnabledKnownRandomness:
      return "RPC enabled, randomness known (white-box)";
    case RpcScenario::kEnabledSecretRandomness:
      return "RPC enabled, randomness secret";
  }
  return "?";
}

DpaExperiment generate_dpa_traces(const Curve& curve, const Scalar& k,
                                  std::size_t num_traces,
                                  RpcScenario scenario,
                                  const AlgorithmicSimConfig& config) {
  DpaExperiment out;
  out.scenario = scenario;
  // With randomize_scalar no single ground truth exists (every trace ran
  // its own k); leave true_bits empty so feeding such an experiment to
  // the key-recovery attacks fails loudly instead of scoring against a
  // scalar no trace executed.
  if (!config.randomize_scalar) out.true_bits = padded_bits_of(curve, k);
  // The victim's countermeasure set: explicit config wins; otherwise the
  // scenario maps to the historical none / rpc-only pair.
  const CountermeasureConfig cm = config.countermeasures.value_or(
      scenario != RpcScenario::kDisabled ? CountermeasureConfig::rpc_only()
                                         : CountermeasureConfig::none());
  const std::size_t trace_len = hardened_trace_length(curve, cm);
  const bool white_box = scenario == RpcScenario::kEnabledKnownRandomness;
  const bool randomize = cm.randomize_projective;

  // All campaign storage up front: no allocation happens inside the
  // per-trace loop (satellite contract; also what makes the block tasks
  // free of shared mutable state beyond their own rows).
  out.traces.traces.assign(num_traces, Trace(trace_len));
  out.base_points.assign(num_traces, Point::at_infinity());
  if (white_box)
    out.known_randomizers.assign(num_traces, {Fe::one(), Fe::one()});

  // Auto lane width: several times the backend's natural granularity —
  // wider blocks amortize the per-block scalar work (seed derivation,
  // point generation, workspace fill) without hurting cache residency.
  const std::size_t lanes =
      config.lanes ? config.lanes
                   : 4 * gf2m::active_lane_vtable()->preferred_width;
  const double area_ge = hw::ecc_coprocessor_ge(163, 4);

  // Derived from the one length formula (hardened_trace_length), not
  // re-derived: real ladder iterations = slots minus the dummy slots.
  const std::size_t real_iters =
      trace_len - (cm.shuffle_schedule ? cm.dummy_iterations : 0);
  const std::size_t top = trace_len - 1;  // first slot's bit index

  // Every lane of a block shares the victim scalar k (unless
  // randomize_scalar draws a fresh one per trace).
  auto process_block = [&](std::size_t j0, std::size_t j1) {
    // Per-worker scratch, reused across every block this thread runs.
    thread_local ecc::LadderManyWorkspace ws;
    thread_local std::vector<Scalar> ks;
    thread_local std::vector<ecc::WideScalar> wks;
    thread_local std::vector<Point> ps;
    thread_local std::vector<std::pair<Fe, Fe>> rands;
    thread_local std::vector<ecc::LadderState> states;
    thread_local std::vector<std::uint8_t> real_bits;
    const std::size_t n = j1 - j0;
    ks.resize(n);
    if (cm.scalar_blinding) wks.resize(n);
    ps.resize(n);
    rands.resize(n);
    states.resize(n);

    // Phase 1: per-trace inputs from each trace's private RNG. Draw
    // order — scalar, base point, blinding mask, blind, Z-randomizers,
    // then (shuffled schedules only) the slot engine's decoy/schedule
    // stream — is part of the determinism contract.
    for (std::size_t j = j0; j < j1; ++j) {
      rng::Xoshiro256 rng(trace_seed(config.seed, j));
      const Scalar kj =
          config.randomize_scalar ? rng.uniform_nonzero(curve.order()) : k;
      ks[j - j0] = kj;
      const Point p = config.fixed_base_point
                          ? *config.fixed_base_point
                          : random_subgroup_point(curve, rng);
      out.base_points[j] = p;
      // Base-point blinding: the victim ladders P + R for a fresh mask R
      // the adversary never sees; base_points keeps the *known* input P.
      Point masked = p;
      if (cm.base_point_blinding) {
        for (;;) {
          masked = curve.add(p, random_subgroup_point(curve, rng));
          if (!masked.infinity && !masked.x.is_zero()) break;
        }
      }
      ps[j - j0] = masked;
      if (cm.scalar_blinding)
        wks[j - j0] =
            blind_scalar(curve, kj, draw_blind(rng, cm.scalar_blind_bits));
      if (randomize) {
        const Fe l1 = random_nonzero_fe(rng);
        const Fe l2 = random_nonzero_fe(rng);
        rands[j - j0] = {l1, l2};
        if (white_box) out.known_randomizers[j] = {l1, l2};
      }

      if (cm.shuffle_schedule) {
        // Shuffled schedules interleave per-trace decoy iterations at
        // secret positions — inherently per-trace control flow, so this
        // config runs the scalar slot engine per trace (still counter-
        // seeded and pool-parallel) instead of the lockstep lanes.
        if (cm.scalar_blinding) {
          unpack_bits_msb(wks[j - j0], real_iters, real_bits);
        } else {
          const Scalar padded = ecc::constant_length_scalar(curve, kj);
          unpack_bits_msb(padded, padded.bit_length() - 1, real_bits);
        }
        Trace& row = out.traces.traces[j];
        const auto observer = [&](const ecc::LadderObservation& ob) {
          const double hw_state =
              hamming_weight(ob.x1) + hamming_weight(ob.z1) +
              hamming_weight(ob.x2) + hamming_weight(ob.z2);
          const double data = hw::ActivityWeights::kRegisterBit * hw_state;
          row[top - ob.bit_index] = style_power(
              config.leakage, data, /*baseline_ge=*/2200.0, area_ge);
        };
        shuffled_ladder_raw(curve, masked, real_bits,
                            /*zero_start=*/cm.scalar_blinding,
                            randomize ? std::make_optional(rands[j - j0])
                                      : std::nullopt,
                            cm.dummy_iterations, rng, observer);
      }
    }

    // Phase 2: the victim ladders, `n` lanes in lockstep (classic or
    // wide/blinded). The leakage tap writes the noiseless register-
    // transfer sample straight into each lane's preallocated trace row.
    // No affine recovery: the campaign consumes leakage, not points.
    if (!cm.shuffle_schedule) {
      ecc::BatchLadderOptions bo;
      if (randomize) bo.randomizers = rands.data();
      thread_local std::vector<int> hw_buf;
      hw_buf.resize(n);
      bo.observer = [&](std::size_t bit_index, const ecc::LadderLanes& s) {
        const std::size_t sample = top - bit_index;
        s.hamming_weights(hw_buf.data());
        for (std::size_t lane = 0; lane < n; ++lane) {
          const double data = hw::ActivityWeights::kRegisterBit *
                              static_cast<double>(hw_buf[lane]);
          out.traces.traces[j0 + lane][sample] =
              style_power(config.leakage, data, /*baseline_ge=*/2200.0,
                          area_ge);
        }
      };
      if (cm.scalar_blinding)
        ecc::ladder_many_wide_into(curve, wks.data(), real_iters, ps.data(),
                                   n, bo, ws, states.data());
      else
        ecc::ladder_many_into(curve, ks.data(), ps.data(), n, bo, ws,
                              states.data());
    }

    // Phase 3: measurement noise, one private stream per trace (drawn in
    // sample order, so the values match any other lane/thread geometry).
    for (std::size_t j = j0; j < j1; ++j) {
      rng::Xoshiro256 noise_rng(trace_seed(config.seed ^ kNoiseSalt, j));
      Trace& t = out.traces.traces[j];
      for (std::size_t i = 0; i < trace_len; ++i)
        t[i] += gaussian(noise_rng, config.leakage.noise_sigma);
    }
  };

  std::unique_ptr<core::ThreadPool> own;
  core::ThreadPool* pool =
      num_traces > lanes ? core::ThreadPool::for_config(config.threads, own)
                         : nullptr;
  if (pool == nullptr) {
    for (std::size_t j0 = 0; j0 < num_traces; j0 += lanes)
      process_block(j0, std::min(num_traces, j0 + lanes));
  } else {
    pool->parallel_for(num_traces, lanes, process_block);
  }
  return out;
}

DpaExperiment generate_dpa_traces_serial(const Curve& curve, const Scalar& k,
                                         std::size_t num_traces,
                                         RpcScenario scenario,
                                         const AlgorithmicSimConfig& config) {
  DpaExperiment out;
  out.scenario = scenario;
  out.true_bits = padded_bits_of(curve, k);
  out.traces.traces.reserve(num_traces);
  out.base_points.reserve(num_traces);

  rng::Xoshiro256 rng(config.seed);
  rng::Xoshiro256 noise_rng(config.seed ^ 0x9E3779B97F4A7C15ull);

  // Batch-generate the per-trace base points up front (one shared
  // inversion for the whole campaign instead of two per trace).
  std::vector<Point> points;
  if (!config.fixed_base_point)
    points = random_subgroup_points_ladder(curve, rng, num_traces);

  for (std::size_t j = 0; j < num_traces; ++j) {
    const Point p =
        config.fixed_base_point ? *config.fixed_base_point : points[j];
    out.base_points.push_back(p);

    ecc::LadderOptions lo;
    if (scenario != RpcScenario::kDisabled) {
      const Fe l1 = random_nonzero_fe(rng);
      const Fe l2 = random_nonzero_fe(rng);
      lo.known_randomizers = std::make_pair(l1, l2);
      if (scenario == RpcScenario::kEnabledKnownRandomness)
        out.known_randomizers.emplace_back(l1, l2);
    }

    Trace trace;
    trace.reserve(out.true_bits.size());
    lo.observer = [&](const ecc::LadderObservation& ob) {
      // Register-transfer leakage: Hamming weight of the four working
      // registers after the iteration, in GE-toggle units.
      const double hw_state = hamming_weight(ob.x1) + hamming_weight(ob.z1) +
                              hamming_weight(ob.x2) + hamming_weight(ob.z2);
      const double data = hw::ActivityWeights::kRegisterBit * hw_state;
      trace.push_back(style_power(config.leakage, data,
                                  /*baseline_ge=*/2200.0,
                                  hw::ecc_coprocessor_ge(163, 4)) +
                      gaussian(noise_rng, config.leakage.noise_sigma));
    };
    montgomery_ladder(curve, k, p, lo);
    out.traces.traces.push_back(std::move(trace));
  }
  return out;
}

CycleVictimPlan plan_cycle_victim(const Curve& curve, const Scalar& k,
                                  const Point& p,
                                  const CycleSimConfig& config) {
  if (p.infinity || p.x.is_zero())
    throw std::invalid_argument("capture_cycle_trace: bad base point");

  rng::Xoshiro256 rng(config.seed);

  const CountermeasureConfig cm = config.countermeasures.value_or(
      config.rpc ? CountermeasureConfig::rpc_only()
                 : CountermeasureConfig::none());

  CycleVictimPlan out;
  out.true_bits = padded_bits_of(curve, k);
  out.noise_seed = config.seed ^ 0xA5A5'5A5A'1234'8765ull;

  // The same planner SecureEccProcessor::Session uses — one
  // implementation of the mask/blind/Z-randomizer/jitter draw order, so
  // the two cycle-accurate victims cannot drift apart. The blinding pair
  // is per-capture state here (the campaign consumes leakage, never the
  // correction).
  std::optional<BaseBlindingPair> pair;
  ecc::Scalar pair_key{};
  out.plan = plan_hardened_coproc_mult(curve, cm, k, p, rng, pair, pair_key);
  return out;
}

namespace {

/// One fused capture into caller-provided storage, reusing a caller-owned
/// co-processor (its register file is reset by point_mult): the averaged
/// capture's block tasks run many captures through one co-processor and
/// its compiled schedules. `samples` is cleared and reserved exactly from
/// the compiled schedule's cycle total.
void capture_cycle_trace_into(const Curve& curve, const Scalar& k,
                              const Point& p, const CycleSimConfig& config,
                              hw::Coprocessor& cop, Trace& samples,
                              std::vector<hw::CycleRecord>* records) {
  const CycleVictimPlan victim = plan_cycle_victim(curve, k, p, config);
  rng::Xoshiro256 noise_rng(victim.noise_seed);

  const std::size_t cycles =
      cop.point_mult_cycles(victim.plan.key_bits.size(), victim.plan.options);
  samples.clear();
  samples.reserve(cycles);
  if (records) {
    records->clear();
    records->reserve(cycles);
  }
  LeakageSampleSink sink(config.leakage, cop.area_ge(), noise_rng, samples,
                         records);
  cop.point_mult(victim.plan.key_bits, victim.plan.base.x,
                 victim.plan.options, &sink);
}

}  // namespace

CycleTrace capture_cycle_trace(const Curve& curve, const Scalar& k,
                               const Point& p, const CycleSimConfig& config) {
  hw::Coprocessor cop(config.coproc);
  CycleTrace out;
  out.true_bits = padded_bits_of(curve, k);
  out.area_ge = cop.area_ge();
  capture_cycle_trace_into(curve, k, p, config, cop, out.samples,
                           config.keep_records ? &out.records : nullptr);
  return out;
}

CycleTrace capture_cycle_trace_reference(const Curve& curve, const Scalar& k,
                                         const Point& p,
                                         const CycleSimConfig& config) {
  hw::CoprocessorConfig cc = config.coproc;
  cc.record_cycles = true;
  hw::Coprocessor cop(cc);

  const CycleVictimPlan victim = plan_cycle_victim(curve, k, p, config);
  rng::Xoshiro256 noise_rng(victim.noise_seed);

  CycleTrace out;
  out.true_bits = victim.true_bits;

  auto r = cop.point_mult(victim.plan.key_bits, victim.plan.base.x,
                          victim.plan.options);
  out.area_ge = cop.area_ge();
  out.records = std::move(r.exec.records);
  out.samples.reserve(out.records.size());
  for (const auto& rec : out.records)
    out.samples.push_back(cycle_sample_noiseless(config.leakage, rec,
                                                 out.area_ge) +
                          gaussian(noise_rng, config.leakage.noise_sigma));
  return out;
}

void dispatch_capture_blocks(
    std::size_t n, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& run_block) {
  std::unique_ptr<core::ThreadPool> own;
  core::ThreadPool* pool =
      n > 1 ? core::ThreadPool::for_config(threads, own) : nullptr;
  if (pool == nullptr) {
    run_block(0, n);
    return;
  }
  // Blocks of a few captures per chunk: enough runners stay busy while
  // each chunk amortizes its block-local state (the reused co-processor
  // and its compiled schedules) across the captures it runs.
  const std::size_t grain =
      std::max<std::size_t>(1, n / (4 * (pool->size() + 1)));
  pool->parallel_for(n, grain, run_block);
}

CycleTrace capture_averaged_cycle_trace(const Curve& curve, const Scalar& k,
                                        const Point& p,
                                        const CycleSimConfig& config,
                                        std::size_t num_captures) {
  if (num_captures == 0)
    throw std::invalid_argument("capture_averaged_cycle_trace: 0 captures");

  // Cycle-accurate captures are independent (each gets its own derived
  // seed), so blocks of them fan out across the pool — each block task
  // reuses ONE co-processor (and its compiled schedules) for all its
  // captures. The fold below runs in capture order, making the average
  // bit-identical to the serial loop at any thread count.
  CycleTrace acc;
  std::vector<Trace> extra(num_captures > 1 ? num_captures - 1 : 0);
  dispatch_capture_blocks(
      num_captures, config.threads, [&](std::size_t b, std::size_t e) {
        hw::Coprocessor cop(config.coproc);
        for (std::size_t j = b; j < e; ++j) {
          if (j == 0) {
            acc.true_bits = padded_bits_of(curve, k);
            acc.area_ge = cop.area_ge();
            capture_cycle_trace_into(curve, k, p, config, cop, acc.samples,
                                     config.keep_records ? &acc.records
                                                         : nullptr);
          } else {
            CycleSimConfig c2 = config;
            c2.seed = averaged_capture_seed(config.seed, j);
            capture_cycle_trace_into(curve, k, p, c2, cop, extra[j - 1],
                                     /*records=*/nullptr);
          }
        }
      });
  for (std::size_t j = 0; j < extra.size(); ++j)
    for (std::size_t i = 0; i < acc.samples.size(); ++i)
      acc.samples[i] += extra[j][i];
  for (double& s : acc.samples) s /= static_cast<double>(num_captures);
  return acc;
}

}  // namespace medsec::sidechannel
