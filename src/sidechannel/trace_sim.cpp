#include "sidechannel/trace_sim.h"

#include <bit>
#include <stdexcept>

#include "hw/activity.h"
#include "rng/xoshiro.h"

namespace medsec::sidechannel {

namespace {

using ecc::Curve;
using ecc::Fe;
using ecc::Point;
using ecc::Scalar;

int hamming_weight(const Fe& v) {
  return std::popcount(v.limb(0)) + std::popcount(v.limb(1)) +
         std::popcount(v.limb(2));
}

Fe nonzero_fe(rng::RandomSource& rng) {
  for (;;) {
    bigint::U192 v;
    for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
    const Fe fe = Fe::from_bits(v);
    if (!fe.is_zero()) return fe;
  }
}

/// Random points of the prime-order subgroup with nonzero x (the inputs
/// the adversary feeds / observes). Uses the projective ladder raw and
/// converts all outputs to affine with one shared batch inversion
/// (Montgomery's trick): the dominant per-point cost beyond the ladder
/// itself disappears when generating the paper's 20 000-trace campaigns.
std::vector<Point> random_subgroup_points(const Curve& c,
                                          rng::RandomSource& rng,
                                          std::size_t n) {
  std::vector<Point> out;
  out.reserve(n);
  while (out.size() < n) {
    const std::size_t want = n - out.size();
    std::vector<Point> bases(want, c.base_point());
    std::vector<ecc::LadderState> states;
    states.reserve(want);
    for (std::size_t i = 0; i < want; ++i)
      states.push_back(ecc::montgomery_ladder_raw(
          c, rng.uniform_nonzero(c.order()), c.base_point()));
    for (const Point& p : ecc::recover_from_ladder_batch(c, bases, states))
      if (!p.infinity && !p.x.is_zero()) out.push_back(p);
  }
  return out;
}

std::vector<int> padded_bits_of(const Curve& c, const Scalar& k) {
  const Scalar padded = ecc::constant_length_scalar(c, k);
  std::vector<int> bits;
  bits.reserve(padded.bit_length());
  for (std::size_t i = padded.bit_length(); i-- > 0;)
    bits.push_back(padded.bit(i) ? 1 : 0);
  return bits;
}

}  // namespace

const char* rpc_scenario_name(RpcScenario s) {
  switch (s) {
    case RpcScenario::kDisabled:
      return "RPC disabled";
    case RpcScenario::kEnabledKnownRandomness:
      return "RPC enabled, randomness known (white-box)";
    case RpcScenario::kEnabledSecretRandomness:
      return "RPC enabled, randomness secret";
  }
  return "?";
}

DpaExperiment generate_dpa_traces(const Curve& curve, const Scalar& k,
                                  std::size_t num_traces,
                                  RpcScenario scenario,
                                  const AlgorithmicSimConfig& config) {
  DpaExperiment out;
  out.scenario = scenario;
  out.true_bits = padded_bits_of(curve, k);
  out.traces.traces.reserve(num_traces);
  out.base_points.reserve(num_traces);

  rng::Xoshiro256 rng(config.seed);
  rng::Xoshiro256 noise_rng(config.seed ^ 0x9E3779B97F4A7C15ull);

  // Batch-generate the per-trace base points up front (one shared
  // inversion for the whole campaign instead of two per trace).
  std::vector<Point> points;
  if (!config.fixed_base_point)
    points = random_subgroup_points(curve, rng, num_traces);

  for (std::size_t j = 0; j < num_traces; ++j) {
    const Point p =
        config.fixed_base_point ? *config.fixed_base_point : points[j];
    out.base_points.push_back(p);

    ecc::LadderOptions lo;
    if (scenario != RpcScenario::kDisabled) {
      const Fe l1 = nonzero_fe(rng);
      const Fe l2 = nonzero_fe(rng);
      lo.known_randomizers = std::make_pair(l1, l2);
      if (scenario == RpcScenario::kEnabledKnownRandomness)
        out.known_randomizers.emplace_back(l1, l2);
    }

    Trace trace;
    trace.reserve(out.true_bits.size());
    lo.observer = [&](const ecc::LadderObservation& ob) {
      // Register-transfer leakage: Hamming weight of the four working
      // registers after the iteration, in GE-toggle units.
      const double hw_state = hamming_weight(ob.x1) + hamming_weight(ob.z1) +
                              hamming_weight(ob.x2) + hamming_weight(ob.z2);
      const double data = hw::ActivityWeights::kRegisterBit * hw_state;
      trace.push_back(style_power(config.leakage, data,
                                  /*baseline_ge=*/2200.0,
                                  hw::ecc_coprocessor_ge(163, 4)) +
                      gaussian(noise_rng, config.leakage.noise_sigma));
    };
    montgomery_ladder(curve, k, p, lo);
    out.traces.traces.push_back(std::move(trace));
  }
  return out;
}

CycleTrace capture_cycle_trace(const Curve& curve, const Scalar& k,
                               const Point& p, const CycleSimConfig& config) {
  if (p.infinity || p.x.is_zero())
    throw std::invalid_argument("capture_cycle_trace: bad base point");

  hw::CoprocessorConfig cc = config.coproc;
  cc.record_cycles = true;
  hw::Coprocessor cop(cc);

  rng::Xoshiro256 rng(config.seed);
  rng::Xoshiro256 noise_rng(config.seed ^ 0xA5A5'5A5A'1234'8765ull);

  hw::PointMultOptions opt;
  if (config.rpc) opt.z_randomizers = {nonzero_fe(rng), nonzero_fe(rng)};

  CycleTrace out;
  out.true_bits = padded_bits_of(curve, k);
  std::vector<int> bits = out.true_bits;
  auto r = cop.point_mult(bits, p.x, opt);
  out.area_ge = cop.area_ge();
  out.records = std::move(r.exec.records);
  out.samples.reserve(out.records.size());
  for (const auto& rec : out.records)
    out.samples.push_back(
        cycle_sample(config.leakage, rec, out.area_ge, noise_rng));
  return out;
}

CycleTrace capture_averaged_cycle_trace(const Curve& curve, const Scalar& k,
                                        const Point& p,
                                        const CycleSimConfig& config,
                                        std::size_t num_captures) {
  if (num_captures == 0)
    throw std::invalid_argument("capture_averaged_cycle_trace: 0 captures");
  CycleTrace acc = capture_cycle_trace(curve, k, p, config);
  for (std::size_t j = 1; j < num_captures; ++j) {
    CycleSimConfig c2 = config;
    c2.seed = config.seed + 0x1000 * j;  // fresh noise, fresh randomizers
    const CycleTrace t = capture_cycle_trace(curve, k, p, c2);
    for (std::size_t i = 0; i < acc.samples.size(); ++i)
      acc.samples[i] += t.samples[i];
  }
  for (double& s : acc.samples) s /= static_cast<double>(num_captures);
  return acc;
}

}  // namespace medsec::sidechannel
