#include "sidechannel/spa.h"

#include <algorithm>
#include <stdexcept>

#include "rng/xoshiro.h"

namespace medsec::sidechannel {

namespace {

/// Threshold classification of spike amplitudes: midpoint of the extreme
/// cluster means. With an informative signal the two clusters separate;
/// with a flat (countermeasure-on) signal the decisions degenerate to
/// noise and accuracy falls to ~0.5.
std::vector<int> classify(const std::vector<double>& amplitudes) {
  const auto [mn, mx] =
      std::minmax_element(amplitudes.begin(), amplitudes.end());
  const double threshold = (*mn + *mx) / 2.0;
  std::vector<int> out;
  out.reserve(amplitudes.size());
  for (const double a : amplitudes) out.push_back(a > threshold ? 1 : 0);
  return out;
}

void score(SpaResult& r, const std::vector<int>& true_bits) {
  // true_bits[0] is the padded leading 1; recovered bits align with [1..].
  for (std::size_t i = 0; i < r.recovered_bits.size(); ++i)
    if (i + 1 < true_bits.size() && r.recovered_bits[i] == true_bits[i + 1])
      ++r.bits_correct;
  r.accuracy = r.recovered_bits.empty()
                   ? 0.0
                   : static_cast<double>(r.bits_correct) /
                         static_cast<double>(r.recovered_bits.size());
}

SpaResult mux_spa_from_amplitudes(const std::vector<double>& amp,
                                  const std::vector<int>& true_bits) {
  if (amp.empty())
    throw std::invalid_argument("mux_control_spa: empty schedule");
  // Each spike encodes "select changed" = k_i xor k_{i-1}; the select
  // line starts at 0 and the first processed bit follows the padded
  // leading 1, so integrating the xor chain from 0 yields the key bits.
  const std::vector<int> toggled = classify(amp);
  SpaResult r;
  r.recovered_bits.reserve(toggled.size());
  int prev = 0;
  for (const int t : toggled) {
    const int bit = t ^ prev;
    r.recovered_bits.push_back(bit);
    prev = bit;
  }
  score(r, true_bits);
  return r;
}

SpaResult gating_spa_from_amplitudes(const std::vector<double>& amp,
                                     const std::vector<int>& true_bits) {
  if (amp.empty())
    throw std::invalid_argument("clock_gating_spa: empty schedule");
  // The X1 clock branch carries the larger layout skew, and XB == X1
  // exactly when the key bit is 1, so "high amplitude" decodes directly
  // to a 1 bit.
  SpaResult r;
  r.recovered_bits = classify(amp);
  score(r, true_bits);
  return r;
}

std::vector<double> amplitudes_at(const CycleTrace& trace,
                                  const std::vector<std::size_t>& cycles,
                                  const char* who) {
  std::vector<double> amp;
  amp.reserve(cycles.size());
  for (const std::size_t c : cycles) {
    if (c >= trace.samples.size())
      throw std::invalid_argument(std::string(who) +
                                  ": schedule out of range");
    amp.push_back(trace.samples[c]);
  }
  return amp;
}

}  // namespace

LadderSchedule profile_schedule(const CycleTrace& profiling_trace) {
  LadderSchedule s;
  std::uint16_t last_iter = 0xffff;
  bool found_write_this_iter = false;
  for (std::size_t i = 0; i < profiling_trace.records.size(); ++i) {
    const hw::CycleRecord& rec = profiling_trace.records[i];
    if (rec.iteration == 0xffff) continue;
    if (rec.iteration != last_iter) {
      last_iter = rec.iteration;
      found_write_this_iter = false;
    }
    if (rec.op == hw::Op::kSelSet) s.selset_cycles.push_back(i);
    // First write into X1 or X2 within the iteration: the XB = XB * ZA
    // writeback, whose destination is key-dependent.
    if (!found_write_this_iter &&
        (rec.clocked_reg_mask == 0b000001 ||   // X1
         rec.clocked_reg_mask == 0b000100)) {  // X2
      s.gated_write_cycles.push_back(i);
      found_write_this_iter = true;
    }
  }
  return s;
}

SpaFeatures capture_spa_features(const ecc::Curve& curve,
                                 const ecc::Scalar& k, const ecc::Point& p,
                                 const CycleSimConfig& config,
                                 const LadderSchedule& schedule) {
  if (schedule.selset_cycles.empty() && schedule.gated_write_cycles.empty())
    throw std::invalid_argument("capture_spa_features: empty schedule");

  hw::Coprocessor cop(config.coproc);
  const CycleVictimPlan victim = plan_cycle_victim(curve, k, p, config);
  rng::Xoshiro256 noise_rng(victim.noise_seed);

  const std::size_t cycles =
      cop.point_mult_cycles(victim.plan.key_bits.size(), victim.plan.options);
  const auto in_range = [cycles](const std::vector<std::size_t>& v) {
    return v.empty() || v.back() < cycles;
  };
  if (!in_range(schedule.selset_cycles) ||
      !in_range(schedule.gated_write_cycles))
    throw std::invalid_argument("capture_spa_features: schedule out of range");

  SpaFeatures out;
  out.true_bits = victim.true_bits;
  out.selset_amplitudes.reserve(schedule.selset_cycles.size());
  out.gated_write_amplitudes.reserve(schedule.gated_write_cycles.size());
  SpaFeatureSink sink(config.leakage, cop.area_ge(), noise_rng, schedule,
                      out);
  cop.point_mult(victim.plan.key_bits, victim.plan.base.x,
                 victim.plan.options, &sink);
  return out;
}

SpaFeatures capture_averaged_spa_features(const ecc::Curve& curve,
                                          const ecc::Scalar& k,
                                          const ecc::Point& p,
                                          const CycleSimConfig& config,
                                          const LadderSchedule& schedule,
                                          std::size_t num_captures) {
  if (num_captures == 0)
    throw std::invalid_argument("capture_averaged_spa_features: 0 captures");

  SpaFeatures acc;
  std::vector<SpaFeatures> extra(num_captures > 1 ? num_captures - 1 : 0);
  dispatch_capture_blocks(
      num_captures, config.threads, [&](std::size_t b, std::size_t e) {
        for (std::size_t j = b; j < e; ++j) {
          if (j == 0) {
            acc = capture_spa_features(curve, k, p, config, schedule);
          } else {
            CycleSimConfig c2 = config;
            // The trace average's seed derivation, so the POI averages
            // stay bit-equal to the averaged trace (pinned by test).
            c2.seed = averaged_capture_seed(config.seed, j);
            extra[j - 1] = capture_spa_features(curve, k, p, c2, schedule);
          }
        }
      });

  // Capture-order fold, then divide: the POI average of the averaged
  // trace, computed without the trace.
  for (const SpaFeatures& f : extra) {
    for (std::size_t i = 0; i < acc.selset_amplitudes.size(); ++i)
      acc.selset_amplitudes[i] += f.selset_amplitudes[i];
    for (std::size_t i = 0; i < acc.gated_write_amplitudes.size(); ++i)
      acc.gated_write_amplitudes[i] += f.gated_write_amplitudes[i];
  }
  const double n = static_cast<double>(num_captures);
  for (double& a : acc.selset_amplitudes) a /= n;
  for (double& a : acc.gated_write_amplitudes) a /= n;
  return acc;
}

SpaResult mux_control_spa(const CycleTrace& trace,
                          const LadderSchedule& schedule) {
  if (schedule.selset_cycles.empty())
    throw std::invalid_argument("mux_control_spa: empty schedule");
  return mux_spa_from_amplitudes(
      amplitudes_at(trace, schedule.selset_cycles, "mux_control_spa"),
      trace.true_bits);
}

SpaResult mux_control_spa(const SpaFeatures& features) {
  return mux_spa_from_amplitudes(features.selset_amplitudes,
                                 features.true_bits);
}

SpaResult clock_gating_spa(const CycleTrace& trace,
                           const LadderSchedule& schedule) {
  if (schedule.gated_write_cycles.empty())
    throw std::invalid_argument("clock_gating_spa: empty schedule");
  return gating_spa_from_amplitudes(
      amplitudes_at(trace, schedule.gated_write_cycles, "clock_gating_spa"),
      trace.true_bits);
}

SpaResult clock_gating_spa(const SpaFeatures& features) {
  return gating_spa_from_amplitudes(features.gated_write_amplitudes,
                                    features.true_bits);
}

}  // namespace medsec::sidechannel
