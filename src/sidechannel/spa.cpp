#include "sidechannel/spa.h"

#include <algorithm>
#include <stdexcept>

namespace medsec::sidechannel {

namespace {

/// Threshold classification of spike amplitudes: midpoint of the extreme
/// cluster means. With an informative signal the two clusters separate;
/// with a flat (countermeasure-on) signal the decisions degenerate to
/// noise and accuracy falls to ~0.5.
std::vector<int> classify(const std::vector<double>& amplitudes) {
  const auto [mn, mx] =
      std::minmax_element(amplitudes.begin(), amplitudes.end());
  const double threshold = (*mn + *mx) / 2.0;
  std::vector<int> out;
  out.reserve(amplitudes.size());
  for (const double a : amplitudes) out.push_back(a > threshold ? 1 : 0);
  return out;
}

void score(SpaResult& r, const std::vector<int>& true_bits) {
  // true_bits[0] is the padded leading 1; recovered bits align with [1..].
  for (std::size_t i = 0; i < r.recovered_bits.size(); ++i)
    if (i + 1 < true_bits.size() && r.recovered_bits[i] == true_bits[i + 1])
      ++r.bits_correct;
  r.accuracy = r.recovered_bits.empty()
                   ? 0.0
                   : static_cast<double>(r.bits_correct) /
                         static_cast<double>(r.recovered_bits.size());
}

}  // namespace

LadderSchedule profile_schedule(const CycleTrace& profiling_trace) {
  LadderSchedule s;
  std::uint16_t last_iter = 0xffff;
  bool found_write_this_iter = false;
  for (std::size_t i = 0; i < profiling_trace.records.size(); ++i) {
    const hw::CycleRecord& rec = profiling_trace.records[i];
    if (rec.iteration == 0xffff) continue;
    if (rec.iteration != last_iter) {
      last_iter = rec.iteration;
      found_write_this_iter = false;
    }
    if (rec.op == hw::Op::kSelSet) s.selset_cycles.push_back(i);
    // First write into X1 or X2 within the iteration: the XB = XB * ZA
    // writeback, whose destination is key-dependent.
    if (!found_write_this_iter &&
        (rec.clocked_reg_mask == 0b000001 ||   // X1
         rec.clocked_reg_mask == 0b000100)) {  // X2
      s.gated_write_cycles.push_back(i);
      found_write_this_iter = true;
    }
  }
  return s;
}

SpaResult mux_control_spa(const CycleTrace& trace,
                          const LadderSchedule& schedule) {
  if (schedule.selset_cycles.empty())
    throw std::invalid_argument("mux_control_spa: empty schedule");
  std::vector<double> amp;
  amp.reserve(schedule.selset_cycles.size());
  for (const std::size_t c : schedule.selset_cycles) {
    if (c >= trace.samples.size())
      throw std::invalid_argument("mux_control_spa: schedule out of range");
    amp.push_back(trace.samples[c]);
  }
  // Each spike encodes "select changed" = k_i xor k_{i-1}; the select
  // line starts at 0 and the first processed bit follows the padded
  // leading 1, so integrating the xor chain from 0 yields the key bits.
  const std::vector<int> toggled = classify(amp);
  SpaResult r;
  r.recovered_bits.reserve(toggled.size());
  int prev = 0;
  for (const int t : toggled) {
    const int bit = t ^ prev;
    r.recovered_bits.push_back(bit);
    prev = bit;
  }
  score(r, trace.true_bits);
  return r;
}

SpaResult clock_gating_spa(const CycleTrace& trace,
                           const LadderSchedule& schedule) {
  if (schedule.gated_write_cycles.empty())
    throw std::invalid_argument("clock_gating_spa: empty schedule");
  std::vector<double> amp;
  amp.reserve(schedule.gated_write_cycles.size());
  for (const std::size_t c : schedule.gated_write_cycles) {
    if (c >= trace.samples.size())
      throw std::invalid_argument("clock_gating_spa: schedule out of range");
    amp.push_back(trace.samples[c]);
  }
  // The X1 clock branch carries the larger layout skew, and XB == X1
  // exactly when the key bit is 1, so "high amplitude" decodes directly
  // to a 1 bit.
  SpaResult r;
  r.recovered_bits = classify(amp);
  score(r, trace.true_bits);
  return r;
}

}  // namespace medsec::sidechannel
