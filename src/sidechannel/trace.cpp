#include "sidechannel/trace.h"

#include <cmath>

namespace medsec::sidechannel {

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  if (n < 2) return 0.0;
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double saa = 0, sbb = 0, sab = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double welch_t(const RunningStats& a, const RunningStats& b) {
  if (a.count() < 2 || b.count() < 2) return 0.0;
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double denom = std::sqrt(va + vb);
  if (denom <= 0.0) return 0.0;
  return (a.mean() - b.mean()) / denom;
}

double dom_z(const RunningStats& g0, const RunningStats& g1) {
  return std::abs(welch_t(g0, g1));
}

}  // namespace medsec::sidechannel
