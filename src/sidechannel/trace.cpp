#include "sidechannel/trace.h"

#include <cmath>

namespace medsec::sidechannel {

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  if (n < 2) return 0.0;
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double saa = 0, sbb = 0, sab = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double welch_t(std::size_t na, double mean_a, double var_a, std::size_t nb,
               double mean_b, double var_b) {
  if (na < 2 || nb < 2) return 0.0;
  const double va = var_a / static_cast<double>(na);
  const double vb = var_b / static_cast<double>(nb);
  const double denom = std::sqrt(va + vb);
  if (denom <= 0.0) return 0.0;
  return (mean_a - mean_b) / denom;
}

double welch_t(const RunningStats& a, const RunningStats& b) {
  return welch_t(a.count(), a.mean(), a.variance(), b.count(), b.mean(),
                 b.variance());
}

double PearsonAcc::correlation() const {
  if (n_ < 2 || cxx_ <= 0.0 || cyy_ <= 0.0) return 0.0;
  return cxy_ / std::sqrt(cxx_ * cyy_);
}

double dom_z(const RunningStats& g0, const RunningStats& g1) {
  return std::abs(welch_t(g0, g1));
}

}  // namespace medsec::sidechannel
