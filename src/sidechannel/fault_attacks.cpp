#include "sidechannel/fault_attacks.h"

#include <stdexcept>

#include "ecc/ladder.h"
#include "rng/xoshiro.h"

namespace medsec::sidechannel {

namespace {

using ecc::Curve;
using ecc::Fe;
using ecc::Point;
using ecc::Scalar;
using gf2m::Gf163;

/// Counter-derived attack randomness (the LossyLink idiom): the n-th word
/// of lane `lane` under `seed`.
std::uint64_t attack_word(std::uint64_t seed, std::uint64_t n,
                          std::uint64_t lane) {
  std::uint64_t s = seed ^ (0xD1B54A32D192ED03ULL * (n + 1)) ^
                    (0x9E3779B97F4A7C15ULL * lane);
  return rng::splitmix64(s);
}

Gf163 bit_mask(unsigned b) {
  std::uint64_t l[3] = {0, 0, 0};
  l[b / 64] = 1ULL << (b % 64);
  return Gf163{l[0], l[1], l[2]};
}

/// An energy-only co-processor for attack campaigns (records are dead
/// weight at thousands of shots).
hw::Coprocessor make_victim_coproc() {
  hw::CoprocessorConfig hc;
  hc.record_cycles = false;
  return hw::Coprocessor(hc);
}

/// MSB-first classic padded key bits of k — the ground truth the attacks
/// are scored against (scoring-only knowledge, the DPA convention).
std::vector<int> padded_key_bits(const Curve& curve, const Scalar& k) {
  const Scalar padded = ecc::constant_length_scalar(curve, k);
  std::vector<int> bits;
  unpack_bits_msb(padded, padded.bit_length(), bits);
  return bits;
}

}  // namespace

VictimRelease guarded_coproc_mult(const Curve& curve,
                                  const CountermeasureConfig& cm,
                                  hw::Coprocessor& coproc, const Scalar& k,
                                  const Point& p, rng::RandomSource& rng,
                                  std::optional<BaseBlindingPair>& pair,
                                  Scalar& pair_key) {
  VictimRelease out;
  const HardenedCoprocPlan plan =
      plan_hardened_coproc_mult(curve, cm, k, p, rng, pair, pair_key);

  bool detected = false;
  // Entry gate: the (masked) base handed to the secure zone must be a
  // curve point. Catches protocol-level invalid-point substitution and a
  // corrupted blinding pair; blind to glitches inside the run.
  if (cm.validate_points &&
      (plan.base.infinity || !curve.is_on_curve(plan.base)))
    detected = true;

  hw::PointMultResult r{};
  bool ran = false;
  if (!detected) {
    r = coproc.point_mult(plan.key_bits, plan.base.x, plan.options, nullptr);
    out.cycles = r.exec.cycles;
    ran = true;
    // Schedule coherence: the §5 closed form as a runtime check. A
    // skipped instruction or suppressed SELSET is missing cycles even
    // when the arithmetic happens to come out right.
    if (cm.coherence_check &&
        r.exec.cycles !=
            coproc.point_mult_cycles(plan.key_bits.size(), plan.options))
      detected = true;
  }

  // Exit: y-recovery doubles as the ladder-invariant + membership check —
  // it throws iff the (X1,Z1,X2,Z2) state is inconsistent with base·k for
  // any k (off-curve result).
  Point result = Point::at_infinity();
  bool recovered = false;
  if (ran) {
    try {
      result = r.result_is_infinity
                   ? Point::at_infinity()
                   : ecc::recover_from_ladder(curve, plan.base, r.x1, r.z1,
                                              r.x2, r.z2);
      recovered = true;
    } catch (const std::logic_error&) {
      recovered = false;
    }
    if (cm.detects_faults() && !recovered) detected = true;
  }

  if (recovered && cm.base_point_blinding && pair)
    result = curve.add(result, curve.negate(pair->correction()));
  if (cm.base_point_blinding && pair) pair->update(curve);

  out.detected = detected;
  if (detected) {
    coproc.zeroize(/*keep_result=*/false);
    if (cm.infective_computation) {
      // Infective response: release key-independent garbage so the
      // suppress/release oracle disappears along with the faulty value.
      out.released = true;
      out.infected = true;
      out.x = ecc::random_nonzero_fe(rng);
    }
    return out;
  }

  out.released = true;
  // Without a detector the controller releases whatever the affine
  // conversion produced — the §5 controller minus the fault gate.
  out.x = recovered ? result.x : r.x_affine;
  return out;
}

FaultAttackResult safe_error_attack(const Curve& curve,
                                    const CountermeasureConfig& cm,
                                    const Scalar& k,
                                    std::size_t bits_to_attack,
                                    std::uint64_t seed) {
  hw::Coprocessor coproc = make_victim_coproc();
  std::optional<BaseBlindingPair> pair;
  Scalar pair_key{};

  const Point p = curve.base_point();
  // Clean or absorbed executions always release exactly k·P (the base-
  // blinding correction restores it), so the attacker's reference is one
  // fault-free observation.
  const Point ref = ecc::montgomery_ladder(curve, k.mod(curve.order()), p);

  const std::vector<int> truth = padded_key_bits(curve, k);
  const std::size_t bits =
      std::min(bits_to_attack, truth.size() - 1);

  FaultAttackResult res;
  res.shots = bits;
  std::vector<int> absorbed(bits, 0);
  for (std::size_t s = 0; s < bits; ++s) {
    rng::Xoshiro256 run_rng(attack_word(seed, s, 0));
    hw::FaultSpec f;
    f.kind = hw::FaultKind::kSelectGlitch;
    f.slot = s;
    coproc.arm_fault(f);
    const VictimRelease rel =
        guarded_coproc_mult(curve, cm, coproc, k, p, run_rng, pair, pair_key);
    coproc.disarm_fault();
    absorbed[s] =
        (rel.released && !rel.infected && !ref.infinity && rel.x == ref.x)
            ? 1
            : 0;
    if (absorbed[s]) ++res.informative_shots;
  }

  // Reconstruction. The routing select entering slot s is the previously
  // processed bit (0 before the first step); an absorbed glitch means the
  // attacked bit equals it, a garbage/suppressed release means it
  // differs. A dead oracle (nothing ever absorbed — detection suppressed
  // or infected every shot) leaves the attacker guessing coins.
  std::vector<int> guess(bits, 0);
  if (res.informative_shots == 0) {
    for (std::size_t s = 0; s < bits; ++s)
      guess[s] = static_cast<int>(attack_word(seed, s, 7) & 1);
  } else {
    int prev = 0;
    for (std::size_t s = 0; s < bits; ++s) {
      guess[s] = absorbed[s] ? prev : 1 - prev;
      prev = guess[s];
    }
  }

  std::size_t correct = 0;
  for (std::size_t s = 0; s < bits; ++s)
    if (guess[s] == truth[s + 1]) ++correct;  // truth[0] = the leading 1
  res.accuracy = bits ? static_cast<double>(correct) / bits : 0.0;
  res.key_recovered = bits > 0 && correct == bits;
  return res;
}

FaultAttackResult invalid_point_attack(const Curve& curve,
                                       const CountermeasureConfig& cm,
                                       const Scalar& k,
                                       std::size_t bits_to_attack,
                                       std::uint64_t seed) {
  hw::Coprocessor coproc = make_victim_coproc();
  hw::Coprocessor sim = make_victim_coproc();  // the attacker's own device
  std::optional<BaseBlindingPair> pair;
  Scalar pair_key{};

  const Point p = curve.base_point();
  const std::vector<int> truth = padded_key_bits(curve, k);
  const std::size_t bits = std::min(bits_to_attack, truth.size() - 1);
  const std::size_t probes = (bits + 1) / 2;

  FaultAttackResult res;
  res.shots = probes;
  std::size_t credited = 0;
  for (std::size_t t = 0; t < probes && credited < bits; ++t) {
    // Aim a stuck-at at XP so the secure zone ladders on an off-curve x̃:
    // the attacker knows the protocol-visible base x, so forcing the
    // complement of one of its bits guarantees x̃ ≠ x.
    const auto b =
        static_cast<unsigned>(attack_word(seed, t, 1) % Gf163::kBits);
    const bool stuck = !p.x.bit(b);
    hw::FaultSpec f;
    f.kind = hw::FaultKind::kStuckAt;
    f.reg = hw::Reg::kXP;
    f.bit = static_cast<std::uint8_t>(b);
    f.stuck_value = stuck;
    coproc.arm_fault(f);
    rng::Xoshiro256 run_rng(attack_word(seed, t, 2));
    const VictimRelease rel =
        guarded_coproc_mult(curve, cm, coproc, k, p, run_rng, pair, pair_key);
    coproc.disarm_fault();

    // Ground-truth simulation of the x̃-ladder on the attacker's device.
    // (In the field this is an enumeration of k's residues in the small
    // subgroups x̃ drags in; scored here with the true k, the standard
    // leak-model shortcut — each reproduced release confirms ~2 bits.)
    const Fe x_tilde = p.x + bit_mask(b);  // stuck == complement: one flip
    const auto sim_r = sim.point_mult(truth, x_tilde, {}, nullptr);
    if (rel.released && !rel.infected && rel.x == sim_r.x_affine) {
      credited += 2;
      ++res.informative_shots;
    }
  }
  credited = std::min(credited, bits);

  // Uncredited bits are coin guesses (chance accuracy when the defense
  // holds).
  std::size_t correct = credited;
  for (std::size_t i = credited; i < bits; ++i) {
    const int g = static_cast<int>(attack_word(seed, i, 8) & 1);
    if (g == truth[i + 1]) ++correct;
  }
  res.accuracy = bits ? static_cast<double>(correct) / bits : 0.0;
  res.key_recovered = bits > 0 && credited == bits;
  return res;
}

}  // namespace medsec::sidechannel
