#include "gf2m/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "gf2m/clmul.h"
#include "gf2m/clmul_hw.h"

namespace medsec::gf2m {

namespace {

// --- portable schoolbook (the seed reference path) --------------------------

void mul326_portable(const std::uint64_t a[3], const std::uint64_t b[3],
                     std::uint64_t p[6]) {
  p[0] = p[1] = p[2] = p[3] = p[4] = p[5] = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      std::uint64_t lo = 0, hi = 0;
      clmul64(a[i], b[j], lo, hi);
      p[i + j] ^= lo;
      p[i + j + 1] ^= hi;
    }
  }
}

void sqr326_portable(const std::uint64_t a[3], std::uint64_t p[6]) {
  for (std::size_t i = 0; i < 3; ++i) clsqr64(a[i], p[2 * i], p[2 * i + 1]);
}

// --- portable Karatsuba: 6 emulated clmuls instead of 9 ---------------------
//
// With a = a0 + a1 X + a2 X^2 (X = x^64) and the six products
//   d_i  = a_i b_i,   e_ij = (a_i + a_j)(b_i + b_j)
// the coefficients of the product are
//   c0 = d0
//   c1 = e01 + d0 + d1
//   c2 = e02 + d0 + d1 + d2
//   c3 = e12 + d1 + d2
//   c4 = d2
// (characteristic 2: additions are XOR, no carries anywhere).

void mul326_karatsuba(const std::uint64_t a[3], const std::uint64_t b[3],
                      std::uint64_t p[6]) {
  std::uint64_t d0l, d0h, d1l, d1h, d2l, d2h;
  std::uint64_t e01l, e01h, e02l, e02h, e12l, e12h;
  clmul64(a[0], b[0], d0l, d0h);
  clmul64(a[1], b[1], d1l, d1h);
  clmul64(a[2], b[2], d2l, d2h);
  clmul64(a[0] ^ a[1], b[0] ^ b[1], e01l, e01h);
  clmul64(a[0] ^ a[2], b[0] ^ b[2], e02l, e02h);
  clmul64(a[1] ^ a[2], b[1] ^ b[2], e12l, e12h);

  const std::uint64_t c1l = e01l ^ d0l ^ d1l, c1h = e01h ^ d0h ^ d1h;
  const std::uint64_t c2l = e02l ^ d0l ^ d1l ^ d2l,
                      c2h = e02h ^ d0h ^ d1h ^ d2h;
  const std::uint64_t c3l = e12l ^ d1l ^ d2l, c3h = e12h ^ d1h ^ d2h;

  p[0] = d0l;
  p[1] = d0h ^ c1l;
  p[2] = c1h ^ c2l;
  p[3] = c2h ^ c3l;
  p[4] = c3h ^ d2l;
  p[5] = d2h;
}

// --- hardware carry-less multiply (kernels shared via clmul_hw.h) -----------

#if MEDSEC_ARCH_X86_64 || MEDSEC_ARCH_AARCH64
void mul326_clmul(const std::uint64_t a[3], const std::uint64_t b[3],
                  std::uint64_t p[6]) {
  hwclmul::mul326_clmul(a, b, p);
}
void sqr326_clmul(const std::uint64_t a[3], std::uint64_t p[6]) {
  hwclmul::sqr326_clmul(a, p);
}
#endif

// --- vtables and dispatch ---------------------------------------------------

constexpr BackendVTable kPortableVTable{Backend::kPortable, "portable",
                                        &mul326_portable, &sqr326_portable};
constexpr BackendVTable kKaratsubaVTable{Backend::kKaratsuba, "karatsuba",
                                         &mul326_karatsuba, &sqr326_portable};
#if MEDSEC_ARCH_X86_64 || MEDSEC_ARCH_AARCH64
constexpr BackendVTable kClmulVTable{Backend::kClmul, "clmul", &mul326_clmul,
                                     &sqr326_clmul};
#endif

const BackendVTable* vtable_for(Backend b) {
  switch (b) {
    case Backend::kPortable:
      return &kPortableVTable;
    case Backend::kKaratsuba:
      return &kKaratsubaVTable;
    case Backend::kClmul:
#if MEDSEC_ARCH_X86_64 || MEDSEC_ARCH_AARCH64
      if (hwclmul::clmul_supported()) return &kClmulVTable;
#endif
      return nullptr;
  }
  return nullptr;
}

const BackendVTable* default_vtable() {
  // Environment override first, then fastest-available.
  if (const char* env = std::getenv("MEDSEC_GF2M_BACKEND")) {
    const std::string_view v{env};
    if (v != "auto" && !v.empty()) {
      Backend b;
      if (!backend_from_name(v, b)) {
        std::fprintf(stderr,
                     "medsec: unknown MEDSEC_GF2M_BACKEND=%s; compiled-in "
                     "scalar backends:\n",
                     env);
        for (const Backend kb : known_backends())
          std::fprintf(stderr, "  %-12s requires %s%s\n", backend_name(kb),
                       backend_requirement(kb),
                       backend_available(kb) ? ""
                                             : "  [unavailable on this CPU]");
        std::fprintf(stderr, "  %-12s (runtime CPU detection)\n", "auto");
        std::exit(2);
      }
      if (const BackendVTable* t = vtable_for(b)) return t;
      std::fprintf(stderr,
                   "medsec: MEDSEC_GF2M_BACKEND=%s requested but %s is "
                   "unavailable on this CPU; using auto\n",
                   env, backend_requirement(b));
    }
  }
  if (const BackendVTable* t = vtable_for(Backend::kClmul)) return t;
  return &kKaratsubaVTable;
}

std::atomic<const BackendVTable*>& dispatch_slot() {
  static std::atomic<const BackendVTable*> slot{default_vtable()};
  return slot;
}

// --- lane dispatch ----------------------------------------------------------
//
// The lane vtables themselves live in lanes.cpp (they pull in the bitsliced
// and interleaved-clmul kernels); this translation unit owns the selection
// policy so the scalar and wide registries stay one subsystem.

/// Lane backend pinned by set_lane_backend / MEDSEC_GF2M_LANES, or null
/// for automatic (follow the scalar backend).
std::atomic<const LaneVTable*>& lane_override_slot() {
  static std::atomic<const LaneVTable*> slot{[]() -> const LaneVTable* {
    const char* env = std::getenv("MEDSEC_GF2M_LANES");
    if (env == nullptr) return nullptr;
    const std::string_view v{env};
    if (v == "auto" || v.empty()) return nullptr;
    LaneBackend b;
    if (!lane_backend_from_name(v, b)) {
      // Unknown names abort: a typo here would silently run an entire
      // campaign on the wrong kernels.
      std::fprintf(stderr,
                   "medsec: unknown MEDSEC_GF2M_LANES=%s; compiled-in lane "
                   "backends:\n",
                   env);
      for (const LaneBackend kb : known_lane_backends())
        std::fprintf(stderr, "  %-12s requires %s%s\n", lane_backend_name(kb),
                     lane_backend_requirement(kb),
                     lane_backend_available(kb) ? ""
                                                : "  [unavailable on this CPU]");
      std::fprintf(stderr, "  %-12s (runtime CPU detection)\n", "auto");
      std::exit(2);
    }
    if (const LaneVTable* t = lane_vtable(b)) return t;
    // Known but not runnable here (CI pins backends on heterogeneous
    // runners): warn and fall back to auto so the suite still runs.
    std::fprintf(stderr,
                 "medsec: MEDSEC_GF2M_LANES=%s requested but %s is "
                 "unavailable on this CPU; using auto\n",
                 env, lane_backend_requirement(b));
    return nullptr;
  }()};
  return slot;
}

}  // namespace

namespace detail {
const BackendVTable* active_vtable() {
  return dispatch_slot().load(std::memory_order_relaxed);
}
}  // namespace detail

Backend active_backend() { return detail::active_vtable()->id; }

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kPortable:
      return "portable";
    case Backend::kKaratsuba:
      return "karatsuba";
    case Backend::kClmul:
      return "clmul";
  }
  return "?";
}

bool backend_available(Backend b) { return vtable_for(b) != nullptr; }

bool set_backend(Backend b) {
  const BackendVTable* t = vtable_for(b);
  if (t == nullptr) return false;
  dispatch_slot().store(t, std::memory_order_relaxed);
  return true;
}

std::vector<Backend> known_backends() {
  return {Backend::kClmul, Backend::kKaratsuba, Backend::kPortable};
}

const BackendVTable* backend_vtable(Backend b) { return vtable_for(b); }

bool backend_from_name(std::string_view name, Backend& out) {
  if (name == "portable") {
    out = Backend::kPortable;
    return true;
  }
  if (name == "karatsuba") {
    out = Backend::kKaratsuba;
    return true;
  }
  if (name == "clmul" || name == "pclmul" || name == "pmull" || name == "hw") {
    out = Backend::kClmul;
    return true;
  }
  return false;
}

const char* backend_requirement(Backend b) {
  switch (b) {
    case Backend::kPortable:
    case Backend::kKaratsuba:
      return "nothing (portable C++)";
    case Backend::kClmul:
      return "PCLMULQDQ (x86-64) / PMULL (AArch64)";
  }
  return "?";
}

const char* lane_backend_name(LaneBackend b) {
  switch (b) {
    case LaneBackend::kLaneScalar:
      return "scalar";
    case LaneBackend::kLaneBitsliced:
      return "bitsliced";
    case LaneBackend::kLaneClmulWide:
      return "clmulwide";
    case LaneBackend::kLaneVpclmul512:
      return "vpclmul512";
    case LaneBackend::kLaneVpclmul256:
      return "vpclmul256";
    case LaneBackend::kLaneBitsliced256:
      return "bitsliced256";
  }
  return "?";
}

bool lane_backend_from_name(std::string_view name, LaneBackend& out) {
  if (name == "scalar") {
    out = LaneBackend::kLaneScalar;
    return true;
  }
  if (name == "bitsliced") {
    out = LaneBackend::kLaneBitsliced;
    return true;
  }
  if (name == "bitsliced256") {
    out = LaneBackend::kLaneBitsliced256;
    return true;
  }
  if (name == "clmul" || name == "clmulwide" || name == "wide") {
    out = LaneBackend::kLaneClmulWide;
    return true;
  }
  if (name == "vpclmul512" || name == "vpclmul" || name == "zmm") {
    out = LaneBackend::kLaneVpclmul512;
    return true;
  }
  if (name == "vpclmul256" || name == "ymm") {
    out = LaneBackend::kLaneVpclmul256;
    return true;
  }
  return false;
}

const char* lane_backend_requirement(LaneBackend b) {
  switch (b) {
    case LaneBackend::kLaneScalar:
      return "nothing (follows the scalar backend)";
    case LaneBackend::kLaneBitsliced:
      return "nothing (portable C++)";
    case LaneBackend::kLaneClmulWide:
      return "PCLMULQDQ (x86-64)";
    case LaneBackend::kLaneVpclmul512:
      return "VPCLMULQDQ + AVX-512F/BW/VL";
    case LaneBackend::kLaneVpclmul256:
      return "VPCLMULQDQ + AVX2";
    case LaneBackend::kLaneBitsliced256:
      return "AVX2";
  }
  return "?";
}

bool lane_backend_available(LaneBackend b) { return lane_vtable(b) != nullptr; }

const LaneVTable* active_lane_vtable() {
  if (const LaneVTable* t =
          lane_override_slot().load(std::memory_order_relaxed))
    return t;
  // Automatic: follow the scalar backend. Hardware clmul gets the widest
  // vector kernel the CPU offers (ZMM mega-lanes > YMM > interleaved
  // 128-bit); the portable reference path gets the bitsliced one (no ISA
  // assumptions); karatsuba (a tuning variant of the scalar emulation)
  // keeps the plain per-lane loop.
  switch (active_backend()) {
    case Backend::kClmul:
      if (const LaneVTable* t = lane_vtable(LaneBackend::kLaneVpclmul512))
        return t;
      if (const LaneVTable* t = lane_vtable(LaneBackend::kLaneVpclmul256))
        return t;
      if (const LaneVTable* t = lane_vtable(LaneBackend::kLaneClmulWide))
        return t;
      break;
    case Backend::kPortable:
      return lane_vtable(LaneBackend::kLaneBitsliced);
    case Backend::kKaratsuba:
      break;
  }
  return lane_vtable(LaneBackend::kLaneScalar);
}

LaneBackend active_lane_backend() { return active_lane_vtable()->id; }

bool set_lane_backend(LaneBackend b) {
  const LaneVTable* t = lane_vtable(b);
  if (t == nullptr) return false;
  lane_override_slot().store(t, std::memory_order_relaxed);
  return true;
}

void reset_lane_backend() {
  lane_override_slot().store(nullptr, std::memory_order_relaxed);
}

std::vector<LaneBackend> known_lane_backends() {
  return {LaneBackend::kLaneVpclmul512,   LaneBackend::kLaneVpclmul256,
          LaneBackend::kLaneClmulWide,    LaneBackend::kLaneBitsliced256,
          LaneBackend::kLaneBitsliced,    LaneBackend::kLaneScalar};
}

}  // namespace medsec::gf2m
