#include "gf2m/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "gf2m/clmul.h"

// The hardware paths use GCC/Clang-only constructs (target attributes,
// __builtin_cpu_supports), so the gates require those compilers too; other
// compilers fall back to the portable/karatsuba backends.
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define MEDSEC_ARCH_X86_64 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define MEDSEC_ARCH_AARCH64 1
#include <arm_neon.h>
#if __has_include(<sys/auxv.h>)
#include <sys/auxv.h>
#define MEDSEC_HAVE_AUXV 1
#endif
#endif

namespace medsec::gf2m {

namespace {

// --- portable schoolbook (the seed reference path) --------------------------

void mul326_portable(const std::uint64_t a[3], const std::uint64_t b[3],
                     std::uint64_t p[6]) {
  p[0] = p[1] = p[2] = p[3] = p[4] = p[5] = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      std::uint64_t lo = 0, hi = 0;
      clmul64(a[i], b[j], lo, hi);
      p[i + j] ^= lo;
      p[i + j + 1] ^= hi;
    }
  }
}

void sqr326_portable(const std::uint64_t a[3], std::uint64_t p[6]) {
  for (std::size_t i = 0; i < 3; ++i) clsqr64(a[i], p[2 * i], p[2 * i + 1]);
}

// --- portable Karatsuba: 6 emulated clmuls instead of 9 ---------------------
//
// With a = a0 + a1 X + a2 X^2 (X = x^64) and the six products
//   d_i  = a_i b_i,   e_ij = (a_i + a_j)(b_i + b_j)
// the coefficients of the product are
//   c0 = d0
//   c1 = e01 + d0 + d1
//   c2 = e02 + d0 + d1 + d2
//   c3 = e12 + d1 + d2
//   c4 = d2
// (characteristic 2: additions are XOR, no carries anywhere).

void mul326_karatsuba(const std::uint64_t a[3], const std::uint64_t b[3],
                      std::uint64_t p[6]) {
  std::uint64_t d0l, d0h, d1l, d1h, d2l, d2h;
  std::uint64_t e01l, e01h, e02l, e02h, e12l, e12h;
  clmul64(a[0], b[0], d0l, d0h);
  clmul64(a[1], b[1], d1l, d1h);
  clmul64(a[2], b[2], d2l, d2h);
  clmul64(a[0] ^ a[1], b[0] ^ b[1], e01l, e01h);
  clmul64(a[0] ^ a[2], b[0] ^ b[2], e02l, e02h);
  clmul64(a[1] ^ a[2], b[1] ^ b[2], e12l, e12h);

  const std::uint64_t c1l = e01l ^ d0l ^ d1l, c1h = e01h ^ d0h ^ d1h;
  const std::uint64_t c2l = e02l ^ d0l ^ d1l ^ d2l,
                      c2h = e02h ^ d0h ^ d1h ^ d2h;
  const std::uint64_t c3l = e12l ^ d1l ^ d2l, c3h = e12h ^ d1h ^ d2h;

  p[0] = d0l;
  p[1] = d0h ^ c1l;
  p[2] = c1h ^ c2l;
  p[3] = c2h ^ c3l;
  p[4] = c3h ^ d2l;
  p[5] = d2h;
}

// --- x86-64 PCLMULQDQ path --------------------------------------------------

#if MEDSEC_ARCH_X86_64

__attribute__((target("pclmul,sse4.1"))) void mul326_clmul(
    const std::uint64_t a[3], const std::uint64_t b[3], std::uint64_t p[6]) {
  const __m128i a01 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i b01 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i a2 = _mm_cvtsi64_si128(static_cast<long long>(a[2]));
  const __m128i b2 = _mm_cvtsi64_si128(static_cast<long long>(b[2]));

  const __m128i d0 = _mm_clmulepi64_si128(a01, b01, 0x00);
  const __m128i d1 = _mm_clmulepi64_si128(a01, b01, 0x11);
  const __m128i d2 = _mm_clmulepi64_si128(a2, b2, 0x00);

  const __m128i a1x = _mm_srli_si128(a01, 8);  // a1 in the low lane
  const __m128i b1x = _mm_srli_si128(b01, 8);
  const __m128i e01 = _mm_clmulepi64_si128(_mm_xor_si128(a01, a1x),
                                           _mm_xor_si128(b01, b1x), 0x00);
  const __m128i e02 = _mm_clmulepi64_si128(_mm_xor_si128(a01, a2),
                                           _mm_xor_si128(b01, b2), 0x00);
  const __m128i e12 = _mm_clmulepi64_si128(_mm_xor_si128(a1x, a2),
                                           _mm_xor_si128(b1x, b2), 0x00);

  const __m128i d01 = _mm_xor_si128(d0, d1);
  const __m128i c1 = _mm_xor_si128(e01, d01);
  const __m128i c2 = _mm_xor_si128(e02, _mm_xor_si128(d01, d2));
  const __m128i c3 = _mm_xor_si128(e12, _mm_xor_si128(d1, d2));

  p[0] = static_cast<std::uint64_t>(_mm_cvtsi128_si64(d0));
  p[1] = static_cast<std::uint64_t>(_mm_extract_epi64(d0, 1)) ^
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(c1));
  p[2] = static_cast<std::uint64_t>(_mm_extract_epi64(c1, 1)) ^
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(c2));
  p[3] = static_cast<std::uint64_t>(_mm_extract_epi64(c2, 1)) ^
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(c3));
  p[4] = static_cast<std::uint64_t>(_mm_extract_epi64(c3, 1)) ^
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(d2));
  p[5] = static_cast<std::uint64_t>(_mm_extract_epi64(d2, 1));
}

__attribute__((target("pclmul,sse4.1"))) void sqr326_clmul(
    const std::uint64_t a[3], std::uint64_t p[6]) {
  for (std::size_t i = 0; i < 3; ++i) {
    const __m128i v = _mm_cvtsi64_si128(static_cast<long long>(a[i]));
    const __m128i s = _mm_clmulepi64_si128(v, v, 0x00);
    p[2 * i] = static_cast<std::uint64_t>(_mm_cvtsi128_si64(s));
    p[2 * i + 1] = static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
  }
}

bool clmul_supported() { return __builtin_cpu_supports("pclmul") != 0; }

#elif MEDSEC_ARCH_AARCH64

// The same 3-limb Karatsuba schedule as the x86 path, on PMULL. The six
// 128-bit products and the XOR folding stay in NEON registers; only the
// final five cross-product recombinations touch general registers (the
// (lo, hi) lane splits straddle product boundaries, as on x86).

__attribute__((target("+crypto"))) inline uint64x2_t pmull128(
    std::uint64_t a, std::uint64_t b) {
  return vreinterpretq_u64_p128(
      vmull_p64(static_cast<poly64_t>(a), static_cast<poly64_t>(b)));
}

__attribute__((target("+crypto"))) void mul326_clmul(const std::uint64_t a[3],
                                                     const std::uint64_t b[3],
                                                     std::uint64_t p[6]) {
  const uint64x2_t d0 = pmull128(a[0], b[0]);
  const uint64x2_t d1 = pmull128(a[1], b[1]);
  const uint64x2_t d2 = pmull128(a[2], b[2]);
  const uint64x2_t e01 = pmull128(a[0] ^ a[1], b[0] ^ b[1]);
  const uint64x2_t e02 = pmull128(a[0] ^ a[2], b[0] ^ b[2]);
  const uint64x2_t e12 = pmull128(a[1] ^ a[2], b[1] ^ b[2]);

  const uint64x2_t d01 = veorq_u64(d0, d1);
  const uint64x2_t c1 = veorq_u64(e01, d01);
  const uint64x2_t c2 = veorq_u64(e02, veorq_u64(d01, d2));
  const uint64x2_t c3 = veorq_u64(e12, veorq_u64(d1, d2));

  p[0] = vgetq_lane_u64(d0, 0);
  p[1] = vgetq_lane_u64(d0, 1) ^ vgetq_lane_u64(c1, 0);
  p[2] = vgetq_lane_u64(c1, 1) ^ vgetq_lane_u64(c2, 0);
  p[3] = vgetq_lane_u64(c2, 1) ^ vgetq_lane_u64(c3, 0);
  p[4] = vgetq_lane_u64(c3, 1) ^ vgetq_lane_u64(d2, 0);
  p[5] = vgetq_lane_u64(d2, 1);
}

__attribute__((target("+crypto"))) void sqr326_clmul(const std::uint64_t a[3],
                                                     std::uint64_t p[6]) {
  for (std::size_t i = 0; i < 3; ++i) {
    const uint64x2_t s = pmull128(a[i], a[i]);
    p[2 * i] = vgetq_lane_u64(s, 0);
    p[2 * i + 1] = vgetq_lane_u64(s, 1);
  }
}

bool clmul_supported() {
#if defined(__ARM_FEATURE_AES) || defined(__ARM_FEATURE_CRYPTO)
  // The crypto extensions are part of the build target: every CPU this
  // binary may legally run on has PMULL.
  return true;
#elif defined(__APPLE__)
  return true;  // every Apple aarch64 core implements PMULL
#elif defined(MEDSEC_HAVE_AUXV) && defined(HWCAP_PMULL)
  return (getauxval(AT_HWCAP) & HWCAP_PMULL) != 0;
#else
  return false;  // no detection channel: stay on the portable paths
#endif
}

#else

bool clmul_supported() { return false; }

#endif

// --- vtables and dispatch ---------------------------------------------------

constexpr BackendVTable kPortableVTable{Backend::kPortable, "portable",
                                        &mul326_portable, &sqr326_portable};
constexpr BackendVTable kKaratsubaVTable{Backend::kKaratsuba, "karatsuba",
                                         &mul326_karatsuba, &sqr326_portable};
#if MEDSEC_ARCH_X86_64 || MEDSEC_ARCH_AARCH64
constexpr BackendVTable kClmulVTable{Backend::kClmul, "clmul", &mul326_clmul,
                                     &sqr326_clmul};
#endif

const BackendVTable* vtable_for(Backend b) {
  switch (b) {
    case Backend::kPortable:
      return &kPortableVTable;
    case Backend::kKaratsuba:
      return &kKaratsubaVTable;
    case Backend::kClmul:
#if MEDSEC_ARCH_X86_64 || MEDSEC_ARCH_AARCH64
      if (clmul_supported()) return &kClmulVTable;
#endif
      return nullptr;
  }
  return nullptr;
}

const BackendVTable* default_vtable() {
  // Environment override first, then fastest-available.
  if (const char* env = std::getenv("MEDSEC_GF2M_BACKEND")) {
    const std::string_view v{env};
    if (v == "portable") return &kPortableVTable;
    if (v == "karatsuba") return &kKaratsubaVTable;
    if (v == "clmul" || v == "pclmul" || v == "pmull" || v == "hw") {
      if (const BackendVTable* t = vtable_for(Backend::kClmul)) return t;
      std::fprintf(stderr,
                   "medsec: MEDSEC_GF2M_BACKEND=%s requested but hardware "
                   "carry-less multiply is unavailable; using karatsuba\n",
                   env);
    } else if (v != "auto" && !v.empty()) {
      std::fprintf(stderr,
                   "medsec: unknown MEDSEC_GF2M_BACKEND=%s "
                   "(want portable|karatsuba|clmul|auto); using auto\n",
                   env);
    }
  }
  if (const BackendVTable* t = vtable_for(Backend::kClmul)) return t;
  return &kKaratsubaVTable;
}

std::atomic<const BackendVTable*>& dispatch_slot() {
  static std::atomic<const BackendVTable*> slot{default_vtable()};
  return slot;
}

}  // namespace

namespace detail {
const BackendVTable* active_vtable() {
  return dispatch_slot().load(std::memory_order_relaxed);
}
}  // namespace detail

Backend active_backend() { return detail::active_vtable()->id; }

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kPortable:
      return "portable";
    case Backend::kKaratsuba:
      return "karatsuba";
    case Backend::kClmul:
      return "clmul";
  }
  return "?";
}

bool backend_available(Backend b) { return vtable_for(b) != nullptr; }

bool set_backend(Backend b) {
  const BackendVTable* t = vtable_for(b);
  if (t == nullptr) return false;
  dispatch_slot().store(t, std::memory_order_relaxed);
  return true;
}

std::vector<Backend> known_backends() {
  return {Backend::kClmul, Backend::kKaratsuba, Backend::kPortable};
}

const BackendVTable* backend_vtable(Backend b) { return vtable_for(b); }

}  // namespace medsec::gf2m
