// backend.h — pluggable arithmetic backends for the F_2^163 field layer.
//
// The paper's thesis is that a carry-less multiplier is smaller and faster
// than an integer one; this subsystem makes the *software model* of that
// multiplier as fast as the host allows, with three interchangeable
// implementations of the unreduced 3x3-limb carry-less product:
//
//   kPortable   — the seed's branchless 4-bit-window emulation, schoolbook
//                 (9 emulated clmuls). Reference path, always available.
//   kKaratsuba  — same emulated clmul primitive, 3-limb Karatsuba
//                 (6 emulated clmuls instead of 9).
//   kClmul      — hardware carry-less multiply (x86 PCLMULQDQ or AArch64
//                 PMULL) plus the same Karatsuba schedule. Available only
//                 when the CPU advertises the instruction.
//
// Selection: runtime CPU detection picks the fastest available backend at
// startup; the MEDSEC_GF2M_BACKEND environment variable
// (portable | karatsuba | clmul | auto) overrides it, and set_backend()
// switches programmatically (used by the per-backend benches and the
// cross-check tests). All backends are bit-for-bit interchangeable; the
// dispatch is a single relaxed-atomic pointer load per field multiply.
#pragma once

#include <cstdint>
#include <vector>

namespace medsec::gf2m {

enum class Backend {
  kPortable,
  kKaratsuba,
  kClmul,
};

/// Unreduced carry-less product of 3-limb polynomials: p[0..5] = a (x) b.
using MulFn = void (*)(const std::uint64_t a[3], const std::uint64_t b[3],
                       std::uint64_t p[6]);
/// Unreduced carry-less square: p[0..5] = a (x) a.
using SqrFn = void (*)(const std::uint64_t a[3], std::uint64_t p[6]);

struct BackendVTable {
  Backend id;
  const char* name;
  MulFn mul;
  SqrFn sqr;
};

/// The backend currently wired into Gf163::mul / Gf163::sqr.
Backend active_backend();
const char* backend_name(Backend b);

/// True if the backend can run on this CPU (kPortable/kKaratsuba always;
/// kClmul only with PCLMULQDQ / PMULL support).
bool backend_available(Backend b);

/// Switch the active backend. Returns false (and leaves the dispatch
/// unchanged) if the backend is unavailable on this CPU.
bool set_backend(Backend b);

/// All backends this build knows about, in preference order (fastest first).
std::vector<Backend> known_backends();

/// Direct access to a backend's vtable (nullptr if unavailable): the
/// cross-check tests and benches drive every implementation explicitly,
/// bypassing the global dispatch.
const BackendVTable* backend_vtable(Backend b);

namespace detail {
/// The active vtable (never null; initialized on first use from CPU
/// detection + MEDSEC_GF2M_BACKEND).
const BackendVTable* active_vtable();
}  // namespace detail

}  // namespace medsec::gf2m
