// backend.h — pluggable arithmetic backends for the F_2^163 field layer.
//
// The paper's thesis is that a carry-less multiplier is smaller and faster
// than an integer one; this subsystem makes the *software model* of that
// multiplier as fast as the host allows, with three interchangeable
// implementations of the unreduced 3x3-limb carry-less product:
//
//   kPortable   — the seed's branchless 4-bit-window emulation, schoolbook
//                 (9 emulated clmuls). Reference path, always available.
//   kKaratsuba  — same emulated clmul primitive, 3-limb Karatsuba
//                 (6 emulated clmuls instead of 9).
//   kClmul      — hardware carry-less multiply (x86 PCLMULQDQ or AArch64
//                 PMULL) plus the same Karatsuba schedule. Available only
//                 when the CPU advertises the instruction.
//
// Selection: runtime CPU detection picks the fastest available backend at
// startup; the MEDSEC_GF2M_BACKEND environment variable
// (portable | karatsuba | clmul | auto) overrides it, and set_backend()
// switches programmatically (used by the per-backend benches and the
// cross-check tests). All backends are bit-for-bit interchangeable; the
// dispatch is a single relaxed-atomic pointer load per field multiply.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace medsec::gf2m {

enum class Backend {
  kPortable,
  kKaratsuba,
  kClmul,
};

/// Unreduced carry-less product of 3-limb polynomials: p[0..5] = a (x) b.
using MulFn = void (*)(const std::uint64_t a[3], const std::uint64_t b[3],
                       std::uint64_t p[6]);
/// Unreduced carry-less square: p[0..5] = a (x) a.
using SqrFn = void (*)(const std::uint64_t a[3], std::uint64_t p[6]);

struct BackendVTable {
  Backend id;
  const char* name;
  MulFn mul;
  SqrFn sqr;
};

/// The backend currently wired into Gf163::mul / Gf163::sqr.
Backend active_backend();
const char* backend_name(Backend b);

/// True if the backend can run on this CPU (kPortable/kKaratsuba always;
/// kClmul only with PCLMULQDQ / PMULL support).
bool backend_available(Backend b);

/// Switch the active backend. Returns false (and leaves the dispatch
/// unchanged) if the backend is unavailable on this CPU.
bool set_backend(Backend b);

/// All backends this build knows about, in preference order (fastest first).
std::vector<Backend> known_backends();

/// Direct access to a backend's vtable (nullptr if unavailable): the
/// cross-check tests and benches drive every implementation explicitly,
/// bypassing the global dispatch.
const BackendVTable* backend_vtable(Backend b);

/// Parse a backend name (canonical name or alias, as accepted by
/// MEDSEC_GF2M_BACKEND). Returns false on unknown names — callers (the
/// env override, bench tooling) must fail loudly rather than fall
/// through.
bool backend_from_name(std::string_view name, Backend& out);

/// Human-readable ISA requirement ("none (portable C++)",
/// "PCLMULQDQ (x86-64) / PMULL (AArch64)", ...), for --list-backends
/// output and dispatch diagnostics.
const char* backend_requirement(Backend b);

namespace detail {
/// The active vtable (never null; initialized on first use from CPU
/// detection + MEDSEC_GF2M_BACKEND).
const BackendVTable* active_vtable();
}  // namespace detail

// --- wide-lane backends -----------------------------------------------------
//
// The batch field layer (gf163_lanes.h) computes N independent field
// operations per call over structure-of-arrays operands. Six
// implementations of that contract:
//
//   kLaneScalar       — per-lane loop over the active scalar backend.
//                       Reference path, always available.
//   kLaneBitsliced    — portable 64-lane bitslicing: lanes are
//                       transposed into 163 bit-planes, multiplied as one
//                       plane-wise Karatsuba, shift-reduced in the plane
//                       domain and transposed back. Branch-free and
//                       constant-time by construction; no hardware
//                       assumptions.
//   kLaneClmulWide    — hardware carry-less multiply with 2–4
//                       independent products interleaved per iteration to
//                       hide PCLMULQDQ latency (x86-64 only).
//   kLaneVpclmul512   — VPCLMULQDQ mega-lanes: 8–16 lanes ZMM-resident
//                       through mul/sqr and the fused forms, vector
//                       shift-reduce fold (needs VPCLMULQDQ +
//                       AVX-512F/BW/VL).
//   kLaneVpclmul256   — the 4-wide YMM variant of the same kernels for
//                       VPCLMULQDQ+AVX2 hosts without AVX-512.
//   kLaneBitsliced256 — the bitsliced backend widened to 256-lane blocks
//                       on AVX2 plane words, with the SoA <-> plane
//                       transposes vectorized (AVX2 / AVX-512 / GFNI,
//                       runtime-dispatched).
//
// Selection follows the scalar registry: set_backend() / the
// MEDSEC_GF2M_BACKEND override pick the matching lane backend (clmul →
// the widest available of vpclmul512 > vpclmul256 > clmulwide, portable →
// kLaneBitsliced, karatsuba → kLaneScalar). MEDSEC_GF2M_LANES
// (scalar | bitsliced | bitsliced256 | clmul | vpclmul512 | vpclmul256 |
// auto) or set_lane_backend() force a specific one regardless; an
// unknown name aborts with the list of compiled-in backends.

enum class LaneBackend {
  kLaneScalar,
  kLaneBitsliced,
  kLaneClmulWide,
  kLaneVpclmul512,
  kLaneVpclmul256,
  kLaneBitsliced256,
};

/// Structure-of-arrays views over N field elements: limb l of lane i is
/// l<n>[i]. Outputs are fully reduced. `out` may alias any input view
/// (the kernels read a lane's operands before writing its result).
struct LaneView {
  const std::uint64_t* l0;
  const std::uint64_t* l1;
  const std::uint64_t* l2;
};
struct LaneSpan {
  std::uint64_t* l0;
  std::uint64_t* l1;
  std::uint64_t* l2;
};

using LaneMulFn = void (*)(LaneView a, LaneView b, LaneSpan out,
                           std::size_t n);
using LaneSqrFn = void (*)(LaneView a, LaneSpan out, std::size_t n);
/// out[i] = a[i]·b[i] + c[i]·d[i], one reduction per lane (lazy fold).
using LaneMulAddMulFn = void (*)(LaneView a, LaneView b, LaneView c,
                                 LaneView d, LaneSpan out, std::size_t n);
/// out[i] = a[i]^2 + b[i]·c[i], one reduction per lane.
using LaneSqrAddMulFn = void (*)(LaneView a, LaneView b, LaneView c,
                                 LaneSpan out, std::size_t n);

struct LaneVTable {
  LaneBackend id;
  const char* name;
  /// Natural lane granularity (the width at which the backend hits full
  /// throughput): 64 for bitsliced, a few for interleaved clmul. Campaign
  /// code sizes its trace blocks as a multiple of this.
  std::size_t preferred_width;
  LaneMulFn mul;
  LaneSqrFn sqr;
  LaneMulAddMulFn mul_add_mul;
  LaneSqrAddMulFn sqr_add_mul;
};

const char* lane_backend_name(LaneBackend b);
bool lane_backend_available(LaneBackend b);
/// The lane vtable the batch layer currently dispatches to (never null).
const LaneVTable* active_lane_vtable();
LaneBackend active_lane_backend();
/// Pin the lane dispatch to one backend (returns false if unavailable).
bool set_lane_backend(LaneBackend b);
/// Back to automatic selection (follow the scalar backend). Discards any
/// pin, including one installed at startup from MEDSEC_GF2M_LANES.
void reset_lane_backend();
/// Direct vtable access for cross-check tests (nullptr if unavailable).
const LaneVTable* lane_vtable(LaneBackend b);
/// All lane backends this build knows about, in preference order.
std::vector<LaneBackend> known_lane_backends();

/// Parse a lane-backend name (canonical name or alias, as accepted by
/// MEDSEC_GF2M_LANES). Returns false on unknown names.
bool lane_backend_from_name(std::string_view name, LaneBackend& out);

/// Human-readable ISA requirement for --list-backends output and
/// dispatch diagnostics.
const char* lane_backend_requirement(LaneBackend b);

}  // namespace medsec::gf2m
