// clmul.h — portable carry-less (polynomial) 64x64 -> 128 multiplication.
//
// Software emulation of a carry-less multiplier using the classic 4-bit
// window method with top-bit correction (the same scheme OpenSSL uses for
// GF(2^m) arithmetic). Branchless: the correction terms are applied under
// arithmetic masks so the instruction sequence does not depend on operand
// values.
#pragma once

#include <cstdint>

namespace medsec::gf2m {

/// Carry-less multiply: (lo, hi) = a (x) b over GF(2)[x].
inline void clmul64(std::uint64_t a, std::uint64_t b, std::uint64_t& lo,
                    std::uint64_t& hi) {
  // Window table over the low 61 bits of a, so entries shifted by up to 3
  // never lose bits off the top of a 64-bit word.
  const std::uint64_t top3 = a >> 61;
  const std::uint64_t a0 = a & 0x1FFFFFFFFFFFFFFFULL;
  std::uint64_t tab[16];
  tab[0] = 0;
  tab[1] = a0;
  tab[2] = a0 << 1;
  tab[3] = tab[2] ^ a0;
  tab[4] = tab[2] << 1;
  tab[5] = tab[4] ^ a0;
  tab[6] = tab[3] << 1;
  tab[7] = tab[6] ^ a0;
  tab[8] = tab[4] << 1;
  tab[9] = tab[8] ^ a0;
  tab[10] = tab[5] << 1;
  tab[11] = tab[10] ^ a0;
  tab[12] = tab[6] << 1;
  tab[13] = tab[12] ^ a0;
  tab[14] = tab[7] << 1;
  tab[15] = tab[14] ^ a0;

  std::uint64_t l = tab[b & 0xF];
  std::uint64_t h = 0;
  for (unsigned i = 4; i < 64; i += 4) {
    const std::uint64_t t = tab[(b >> i) & 0xF];
    l ^= t << i;
    h ^= t >> (64 - i);
  }

  // Fold back the top three bits of a, branchlessly.
  const std::uint64_t m0 = 0 - (top3 & 1);
  const std::uint64_t m1 = 0 - ((top3 >> 1) & 1);
  const std::uint64_t m2 = 0 - ((top3 >> 2) & 1);
  l ^= (b << 61) & m0;
  h ^= (b >> 3) & m0;
  l ^= (b << 62) & m1;
  h ^= (b >> 2) & m1;
  l ^= (b << 63) & m2;
  h ^= (b >> 1) & m2;

  lo = l;
  hi = h;
}

/// Carry-less square: spreads the bits of a with zero interleave.
/// (lo, hi) = a (x) a. Squaring over GF(2) is linear, so this is just a
/// bit-expansion.
inline void clsqr64(std::uint64_t a, std::uint64_t& lo, std::uint64_t& hi) {
  auto spread32 = [](std::uint32_t x) -> std::uint64_t {
    std::uint64_t v = x;
    v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
    v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
    v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
    v = (v | (v << 2)) & 0x3333333333333333ULL;
    v = (v | (v << 1)) & 0x5555555555555555ULL;
    return v;
  };
  lo = spread32(static_cast<std::uint32_t>(a));
  hi = spread32(static_cast<std::uint32_t>(a >> 32));
}

}  // namespace medsec::gf2m
