// gf163_lanes.h — the batch field layer: N independent F_2^163 elements
// computed per call.
//
// Gf163xN stores N field elements structure-of-arrays (limb-major), which
// is the layout every wide backend wants: the interleaved-clmul kernel
// streams consecutive lanes through independent PCLMULQDQ chains, the
// bitsliced kernel transposes 64-lane blocks into bit-planes, and
// per-lane taps (the trace simulator's Hamming-weight probe, the ladder's
// conditional swaps) index a lane directly without deinterleaving.
//
// All arithmetic dispatches through the lane-backend registry in
// backend.h (MEDSEC_GF2M_LANES / set_lane_backend); results are
// bit-identical across backends and identical to Gf163 scalar arithmetic
// lane by lane — the batched ladder and the DPA hypothesis engine rely on
// that exactness.
#pragma once

#include <cstdint>
#include <vector>

#include "gf2m/backend.h"
#include "gf2m/gf2_163.h"

namespace medsec::gf2m {

class Gf163xN {
 public:
  Gf163xN() = default;
  explicit Gf163xN(std::size_t n) { resize(n); }

  /// Resize to n lanes, zero-filled (existing lane values discarded).
  void resize(std::size_t n) {
    n_ = n;
    l0_.assign(n, 0);
    l1_.assign(n, 0);
    l2_.assign(n, 0);
  }

  std::size_t lanes() const { return n_; }

  void set(std::size_t i, const Gf163& v) {
    l0_[i] = v.limb(0);
    l1_[i] = v.limb(1);
    l2_[i] = v.limb(2);
  }
  Gf163 get(std::size_t i) const { return Gf163{l0_[i], l1_[i], l2_[i]}; }
  void fill(const Gf163& v) {
    for (std::size_t i = 0; i < n_; ++i) set(i, v);
  }

  LaneView view() const { return LaneView{l0_.data(), l1_.data(), l2_.data()}; }
  LaneSpan span() { return LaneSpan{l0_.data(), l1_.data(), l2_.data()}; }

  /// out[i] = a[i] · b[i] (all arguments must have equal lane count; out
  /// may alias a or b).
  static void mul(const Gf163xN& a, const Gf163xN& b, Gf163xN& out);
  /// out[i] = a[i]^2.
  static void sqr(const Gf163xN& a, Gf163xN& out);
  /// out[i] = a[i]·b[i] + c[i]·d[i], one reduction per lane.
  static void mul_add_mul(const Gf163xN& a, const Gf163xN& b,
                          const Gf163xN& c, const Gf163xN& d, Gf163xN& out);
  /// out[i] = a[i]^2 + b[i]·c[i], one reduction per lane.
  static void sqr_add_mul(const Gf163xN& a, const Gf163xN& b,
                          const Gf163xN& c, Gf163xN& out);

  /// out[i] = a[i] + b[i] (XOR; no backend dispatch needed).
  static void add(const Gf163xN& a, const Gf163xN& b, Gf163xN& out) {
    for (std::size_t i = 0; i < out.n_; ++i) {
      out.l0_[i] = a.l0_[i] ^ b.l0_[i];
      out.l1_[i] = a.l1_[i] ^ b.l1_[i];
      out.l2_[i] = a.l2_[i] ^ b.l2_[i];
    }
  }

  /// Constant-time per-lane conditional swap: lane i of a and b swapped
  /// when choice[i] & 1 (same masking discipline as Gf163::cswap).
  static void cswap(const std::uint8_t* choice, Gf163xN& a, Gf163xN& b) {
    for (std::size_t i = 0; i < a.n_; ++i) {
      const std::uint64_t m = 0 - static_cast<std::uint64_t>(choice[i] & 1);
      std::uint64_t t = (a.l0_[i] ^ b.l0_[i]) & m;
      a.l0_[i] ^= t;
      b.l0_[i] ^= t;
      t = (a.l1_[i] ^ b.l1_[i]) & m;
      a.l1_[i] ^= t;
      b.l1_[i] ^= t;
      t = (a.l2_[i] ^ b.l2_[i]) & m;
      a.l2_[i] ^= t;
      b.l2_[i] ^= t;
    }
  }

  /// Hamming weight of lane i (the register-transfer leakage unit).
  int hamming_weight(std::size_t i) const;

  /// out[i] += hamming_weight(lane i) for every lane, walking each limb
  /// array contiguously — the bulk form the per-iteration leakage tap
  /// uses (array-major, so ~12x fewer cache lines touched than calling
  /// hamming_weight per lane).
  void hamming_weights_add(int* out) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> l0_, l1_, l2_;
};

}  // namespace medsec::gf2m
