// lanes.cpp — wide-lane kernels for the batch field layer.
//
// Six implementations of the LaneVTable contract (see backend.h):
//
//   * scalar loop — per-lane calls into the active scalar backend. The
//     reference every other lane backend is cross-checked against.
//
//   * bitsliced — 64 lanes are transposed into 163 bit-planes (one
//     machine word per polynomial coefficient, one bit per lane), the
//     product is a plane-wise Karatsuba over GF(2), the 325-plane result
//     is shift-reduced in the plane domain, and the 163 output planes are
//     transposed back. Branch-free from end to end: the instruction
//     stream never depends on lane values, so the batch is constant-time
//     by construction (the property the paper's co-processor gets from
//     hardware, recovered here in portable C++).
//
//   * bitsliced256 — the same plane-domain pipeline widened to 256-lane
//     blocks: one __m256i per plane word (four 64-lane groups in
//     lockstep), AVX2 plane Karatsuba, and the SoA <-> plane transposes
//     going through the vectorized 64x64 transpose (transpose_bits.h:
//     GFNI / AVX-512 / AVX2, runtime-dispatched).
//
//   * interleaved clmul — the 3-limb Karatsuba schedule on hardware
//     carry-less multiplies, two independent lanes per loop iteration
//     (plus the fused two-product forms: up to four independent 128-bit
//     products in flight). The scalar ladder is PCLMULQDQ-*latency*
//     bound; feeding the unit independent products converts it to
//     *throughput* bound, which is where the wide campaign engine gets
//     its single-core speedup.
//
//   * vpclmul512 / vpclmul256 — the mega-lane backends: VPCLMULQDQ packs
//     four (ZMM) or two (YMM) carry-less multiplies per instruction, so
//     8 (resp. 4) SoA lanes run one shared 3-limb Karatsuba schedule with
//     products and the shift-reduce fold staying vector-resident
//     (clmul_vec.h). The plain mul/sqr kernels keep two 8-lane groups in
//     flight (16 lanes per iteration); the fused forms already carry two
//     independent products per group. Tails (< one group) fall back to
//     the scalar 128-bit clmul kernel — bit-identical by the shared fold.
#include <bit>
#include <cstring>

#include "gf2m/backend.h"
#include "gf2m/clmul_hw.h"
#include "gf2m/clmul_vec.h"
#include "gf2m/gf163_lanes.h"
#include "gf2m/reduce_163.h"
#include "gf2m/transpose_bits.h"

namespace medsec::gf2m {

namespace {

// --- scalar-loop lane kernels -----------------------------------------------

void lane_mul_scalar(LaneView a, LaneView b, LaneSpan out, std::size_t n) {
  const BackendVTable* vt = detail::active_vtable();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    std::uint64_t p[6], r[3];
    vt->mul(av, bv, p);
    reduce326(p, r);
    out.l0[i] = r[0];
    out.l1[i] = r[1];
    out.l2[i] = r[2];
  }
}

void lane_sqr_scalar(LaneView a, LaneSpan out, std::size_t n) {
  const BackendVTable* vt = detail::active_vtable();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    std::uint64_t p[6], r[3];
    vt->sqr(av, p);
    reduce326(p, r);
    out.l0[i] = r[0];
    out.l1[i] = r[1];
    out.l2[i] = r[2];
  }
}

void lane_mul_add_mul_scalar(LaneView a, LaneView b, LaneView c, LaneView d,
                             LaneSpan out, std::size_t n) {
  const BackendVTable* vt = detail::active_vtable();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cv[3] = {c.l0[i], c.l1[i], c.l2[i]};
    const std::uint64_t dv[3] = {d.l0[i], d.l1[i], d.l2[i]};
    std::uint64_t p[6], q[6], r[3];
    vt->mul(av, bv, p);
    vt->mul(cv, dv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] ^= q[w];
    reduce326(p, r);
    out.l0[i] = r[0];
    out.l1[i] = r[1];
    out.l2[i] = r[2];
  }
}

void lane_sqr_add_mul_scalar(LaneView a, LaneView b, LaneView c, LaneSpan out,
                             std::size_t n) {
  const BackendVTable* vt = detail::active_vtable();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cv[3] = {c.l0[i], c.l1[i], c.l2[i]};
    std::uint64_t p[6], q[6], r[3];
    vt->sqr(av, p);
    vt->mul(bv, cv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] ^= q[w];
    reduce326(p, r);
    out.l0[i] = r[0];
    out.l1[i] = r[1];
    out.l2[i] = r[2];
  }
}

constexpr LaneVTable kLaneScalarVTable{
    LaneBackend::kLaneScalar, "scalar", 4,
    &lane_mul_scalar, &lane_sqr_scalar,
    &lane_mul_add_mul_scalar, &lane_sqr_add_mul_scalar};

// --- bitsliced lane kernels -------------------------------------------------

constexpr std::size_t kBsWidth = 64;    ///< lanes per bitsliced block
constexpr std::size_t kBits = 163;      ///< planes per operand
constexpr std::size_t kProdBits = 325;  ///< planes per unreduced product

/// Lanes [base, base+count) of v -> bit planes (count <= 64; missing
/// lanes read as zero). planes[p] bit i = bit p of lane base+i. The
/// transpose runs through the widest ISA variant the host offers
/// (transpose_bits.h).
void gather_planes(LaneView v, std::size_t base, std::size_t count,
                   std::uint64_t planes[192]) {
  const std::uint64_t* limbs[3] = {v.l0, v.l1, v.l2};
  for (std::size_t l = 0; l < 3; ++l) {
    std::uint64_t* m = planes + 64 * l;
    for (std::size_t i = 0; i < kBsWidth; ++i)
      m[i] = i < count ? limbs[l][base + i] : 0;
    bits::transpose64(m);
  }
}

/// Bit planes -> lanes [base, base+count) of out (inverse of
/// gather_planes; planes above index 162 must be zero).
void scatter_planes(const std::uint64_t planes[192], LaneSpan out,
                    std::size_t base, std::size_t count) {
  std::uint64_t* limbs[3] = {out.l0, out.l1, out.l2};
  std::uint64_t m[64];
  for (std::size_t l = 0; l < 3; ++l) {
    std::memcpy(m, planes + 64 * l, sizeof m);
    bits::transpose64(m);
    for (std::size_t i = 0; i < count; ++i) limbs[l][base + i] = m[i];
  }
}

/// Schoolbook plane product: c[0..na+nb-2] ^= a (x) b. Branch-free on
/// plane values (no zero-skipping: a skip would leak that all 64 lanes
/// share a zero coefficient).
void bs_mul_schoolbook(const std::uint64_t* a, std::size_t na,
                       const std::uint64_t* b, std::size_t nb,
                       std::uint64_t* c) {
  for (std::size_t i = 0; i < na; ++i) {
    const std::uint64_t ai = a[i];
    std::uint64_t* ci = c + i;
    for (std::size_t j = 0; j < nb; ++j) ci[j] ^= ai & b[j];
  }
}

/// Recursive plane-domain Karatsuba: c[0..2n-2] ^= a (x) b. `scratch`
/// must hold >= 6n words and is consumed front-to-back per level (child
/// calls reuse the space beyond this level's slices).
void bs_mul_rec(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                std::uint64_t* c, std::uint64_t* scratch) {
  if (n <= 24) {
    bs_mul_schoolbook(a, n, b, n, c);
    return;
  }
  const std::size_t h = n / 2;   // low part
  const std::size_t w = n - h;   // high part (w >= h)

  std::uint64_t* sa = scratch;                  // w
  std::uint64_t* sb = sa + w;                   // w
  std::uint64_t* p0 = sb + w;                   // 2h-1
  std::uint64_t* p2 = p0 + (2 * h - 1);         // 2w-1
  std::uint64_t* pm = p2 + (2 * w - 1);         // 2w-1
  std::uint64_t* next = pm + (2 * w - 1);

  for (std::size_t i = 0; i < w; ++i) {
    sa[i] = (i < h ? a[i] : 0) ^ a[h + i];
    sb[i] = (i < h ? b[i] : 0) ^ b[h + i];
  }
  std::memset(p0, 0, (2 * h - 1) * sizeof(std::uint64_t));
  std::memset(p2, 0, (2 * w - 1) * sizeof(std::uint64_t));
  std::memset(pm, 0, (2 * w - 1) * sizeof(std::uint64_t));
  bs_mul_rec(a, b, h, p0, next);
  bs_mul_rec(a + h, b + h, w, p2, next);
  bs_mul_rec(sa, sb, w, pm, next);

  // c += P0 + x^h (Pm + P0 + P2) + x^2h P2.
  for (std::size_t i = 0; i < 2 * h - 1; ++i) c[i] ^= p0[i];
  for (std::size_t i = 0; i < 2 * w - 1; ++i) c[2 * h + i] ^= p2[i];
  for (std::size_t i = 0; i < 2 * h - 1; ++i) c[h + i] ^= p0[i];
  for (std::size_t i = 0; i < 2 * w - 1; ++i) c[h + i] ^= pm[i] ^ p2[i];
}

/// Shift-reduce in the plane domain: the shared fold from reduce_163.h
/// instantiated on one machine word per plane.
void bs_reduce(std::uint64_t c[kProdBits]) { reduce_planes(c, kProdBits); }

/// Karatsuba scratch: 6n at the top level + 6(n/2) + ... < 12n. 2048
/// words is comfortably above 12*163.
struct BsScratch {
  std::uint64_t prod[kProdBits];
  std::uint64_t karat[2048];
};

void bs_mul_block(const std::uint64_t a[192], const std::uint64_t b[192],
                  std::uint64_t prod[kProdBits], std::uint64_t* karat) {
  std::memset(prod, 0, kProdBits * sizeof(std::uint64_t));
  bs_mul_rec(a, b, kBits, prod, karat);
}

/// Squaring in the plane domain is a zero-interleave: coefficient i of
/// the square is coefficient 2i of the input.
void bs_sqr_block(const std::uint64_t a[192], std::uint64_t prod[kProdBits]) {
  std::memset(prod, 0, kProdBits * sizeof(std::uint64_t));
  for (std::size_t i = 0; i < kBits; ++i) prod[2 * i] = a[i];
}

void lane_mul_bitsliced(LaneView a, LaneView b, LaneSpan out, std::size_t n) {
  BsScratch s;
  std::uint64_t pa[192], pb[192];
  for (std::size_t base = 0; base < n; base += kBsWidth) {
    const std::size_t count = n - base < kBsWidth ? n - base : kBsWidth;
    gather_planes(a, base, count, pa);
    gather_planes(b, base, count, pb);
    bs_mul_block(pa, pb, s.prod, s.karat);
    bs_reduce(s.prod);
    scatter_planes(s.prod, out, base, count);
  }
}

void lane_sqr_bitsliced(LaneView a, LaneSpan out, std::size_t n) {
  BsScratch s;
  std::uint64_t pa[192];
  for (std::size_t base = 0; base < n; base += kBsWidth) {
    const std::size_t count = n - base < kBsWidth ? n - base : kBsWidth;
    gather_planes(a, base, count, pa);
    bs_sqr_block(pa, s.prod);
    bs_reduce(s.prod);
    scatter_planes(s.prod, out, base, count);
  }
}

void lane_mul_add_mul_bitsliced(LaneView a, LaneView b, LaneView c, LaneView d,
                                LaneSpan out, std::size_t n) {
  BsScratch s;
  std::uint64_t pa[192], pb[192];
  std::uint64_t acc[kProdBits];
  for (std::size_t base = 0; base < n; base += kBsWidth) {
    const std::size_t count = n - base < kBsWidth ? n - base : kBsWidth;
    gather_planes(a, base, count, pa);
    gather_planes(b, base, count, pb);
    bs_mul_block(pa, pb, acc, s.karat);
    gather_planes(c, base, count, pa);
    gather_planes(d, base, count, pb);
    // Accumulate the second product into the first before the single
    // shift-reduce (the lane-domain form of the scalar lazy reduction).
    bs_mul_rec(pa, pb, kBits, acc, s.karat);
    bs_reduce(acc);
    scatter_planes(acc, out, base, count);
  }
}

void lane_sqr_add_mul_bitsliced(LaneView a, LaneView b, LaneView c,
                                LaneSpan out, std::size_t n) {
  BsScratch s;
  std::uint64_t pa[192], pb[192];
  std::uint64_t acc[kProdBits];
  for (std::size_t base = 0; base < n; base += kBsWidth) {
    const std::size_t count = n - base < kBsWidth ? n - base : kBsWidth;
    gather_planes(a, base, count, pa);
    bs_sqr_block(pa, acc);
    gather_planes(b, base, count, pa);
    gather_planes(c, base, count, pb);
    bs_mul_rec(pa, pb, kBits, acc, s.karat);
    bs_reduce(acc);
    scatter_planes(acc, out, base, count);
  }
}

constexpr LaneVTable kLaneBitslicedVTable{
    LaneBackend::kLaneBitsliced, "bitsliced", kBsWidth,
    &lane_mul_bitsliced, &lane_sqr_bitsliced,
    &lane_mul_add_mul_bitsliced, &lane_sqr_add_mul_bitsliced};

// --- 256-lane bitsliced kernels (AVX2 plane words) --------------------------
//
// Identical pipeline to the 64-lane backend with one __m256i per plane
// word: word w of plane p covers lanes 64w..64w+63, so the SoA <-> plane
// conversion is four independent 64x64 transposes per limb (the
// vectorized transpose dispatch in transpose_bits.h), and every plane
// operation processes four 64-lane groups per instruction. Same
// branch-free/constant-time structure: the instruction stream never
// depends on lane values.

#if MEDSEC_ARCH_X86_64

constexpr std::size_t kBs4Width = 256;  ///< lanes per widened block
constexpr std::size_t kBs4Words = 4;    ///< 64-lane groups per block

#define MEDSEC_TARGET_AVX2 __attribute__((target("avx2")))

/// Lanes [base, base+count) -> planes (count <= 256, missing lanes
/// zero). Plane words are written through a scalar view: the transpose
/// itself is the vectorized one.
void gather_planes_x4(LaneView v, std::size_t base, std::size_t count,
                      __m256i planes[192]) {
  const std::uint64_t* limbs[3] = {v.l0, v.l1, v.l2};
  std::uint64_t* pw = reinterpret_cast<std::uint64_t*>(planes);
  std::uint64_t m[64];
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t w = 0; w < kBs4Words; ++w) {
      const std::size_t group = 64 * w;
      for (std::size_t i = 0; i < 64; ++i)
        m[i] = group + i < count ? limbs[l][base + group + i] : 0;
      bits::transpose64(m);
      for (std::size_t k = 0; k < 64; ++k)
        pw[kBs4Words * (64 * l + k) + w] = m[k];
    }
  }
}

void scatter_planes_x4(const __m256i planes[192], LaneSpan out,
                       std::size_t base, std::size_t count) {
  std::uint64_t* limbs[3] = {out.l0, out.l1, out.l2};
  const std::uint64_t* pw = reinterpret_cast<const std::uint64_t*>(planes);
  std::uint64_t m[64];
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t w = 0; w < kBs4Words; ++w) {
      const std::size_t group = 64 * w;
      if (group >= count) break;
      for (std::size_t k = 0; k < 64; ++k)
        m[k] = pw[kBs4Words * (64 * l + k) + w];
      bits::transpose64(m);
      const std::size_t lim = count - group < 64 ? count - group : 64;
      for (std::size_t i = 0; i < lim; ++i)
        limbs[l][base + group + i] = m[i];
    }
  }
}

MEDSEC_TARGET_AVX2 void bs_mul_schoolbook_x4(const __m256i* a, std::size_t na,
                                             const __m256i* b, std::size_t nb,
                                             __m256i* c) {
  for (std::size_t i = 0; i < na; ++i) {
    const __m256i ai = a[i];
    __m256i* ci = c + i;
    for (std::size_t j = 0; j < nb; ++j)
      ci[j] = _mm256_xor_si256(ci[j], _mm256_and_si256(ai, b[j]));
  }
}

/// Same recursion and scratch discipline as bs_mul_rec, on vector plane
/// words.
MEDSEC_TARGET_AVX2 void bs_mul_rec_x4(const __m256i* a, const __m256i* b,
                                      std::size_t n, __m256i* c,
                                      __m256i* scratch) {
  if (n <= 24) {
    bs_mul_schoolbook_x4(a, n, b, n, c);
    return;
  }
  const std::size_t h = n / 2;
  const std::size_t w = n - h;

  __m256i* sa = scratch;
  __m256i* sb = sa + w;
  __m256i* p0 = sb + w;
  __m256i* p2 = p0 + (2 * h - 1);
  __m256i* pm = p2 + (2 * w - 1);
  __m256i* next = pm + (2 * w - 1);

  for (std::size_t i = 0; i < w; ++i) {
    sa[i] = _mm256_xor_si256(i < h ? a[i] : _mm256_setzero_si256(), a[h + i]);
    sb[i] = _mm256_xor_si256(i < h ? b[i] : _mm256_setzero_si256(), b[h + i]);
  }
  std::memset(p0, 0, (2 * h - 1) * sizeof(__m256i));
  std::memset(p2, 0, (2 * w - 1) * sizeof(__m256i));
  std::memset(pm, 0, (2 * w - 1) * sizeof(__m256i));
  bs_mul_rec_x4(a, b, h, p0, next);
  bs_mul_rec_x4(a + h, b + h, w, p2, next);
  bs_mul_rec_x4(sa, sb, w, pm, next);

  for (std::size_t i = 0; i < 2 * h - 1; ++i)
    c[i] = _mm256_xor_si256(c[i], p0[i]);
  for (std::size_t i = 0; i < 2 * w - 1; ++i)
    c[2 * h + i] = _mm256_xor_si256(c[2 * h + i], p2[i]);
  for (std::size_t i = 0; i < 2 * h - 1; ++i)
    c[h + i] = _mm256_xor_si256(c[h + i], p0[i]);
  for (std::size_t i = 0; i < 2 * w - 1; ++i)
    c[h + i] = _mm256_xor_si256(c[h + i], _mm256_xor_si256(pm[i], p2[i]));
}

struct Bs4Scratch {
  __m256i prod[kProdBits];
  __m256i karat[2048];
};

MEDSEC_TARGET_AVX2 void bs_mul_block_x4(const __m256i a[192],
                                        const __m256i b[192], __m256i* prod,
                                        __m256i* karat) {
  std::memset(prod, 0, kProdBits * sizeof(__m256i));
  bs_mul_rec_x4(a, b, kBits, prod, karat);
}

MEDSEC_TARGET_AVX2 void bs_sqr_block_x4(const __m256i a[192], __m256i* prod) {
  std::memset(prod, 0, kProdBits * sizeof(__m256i));
  for (std::size_t i = 0; i < kBits; ++i) prod[2 * i] = a[i];
}

MEDSEC_TARGET_AVX2 void lane_mul_bitsliced256(LaneView a, LaneView b, LaneSpan out,
                           std::size_t n) {
  Bs4Scratch s;
  __m256i pa[192], pb[192];
  for (std::size_t base = 0; base < n; base += kBs4Width) {
    const std::size_t count = n - base < kBs4Width ? n - base : kBs4Width;
    gather_planes_x4(a, base, count, pa);
    gather_planes_x4(b, base, count, pb);
    bs_mul_block_x4(pa, pb, s.prod, s.karat);
    reduce_planes_x4(s.prod, kProdBits);
    scatter_planes_x4(s.prod, out, base, count);
  }
}

MEDSEC_TARGET_AVX2 void lane_sqr_bitsliced256(LaneView a, LaneSpan out, std::size_t n) {
  Bs4Scratch s;
  __m256i pa[192];
  for (std::size_t base = 0; base < n; base += kBs4Width) {
    const std::size_t count = n - base < kBs4Width ? n - base : kBs4Width;
    gather_planes_x4(a, base, count, pa);
    bs_sqr_block_x4(pa, s.prod);
    reduce_planes_x4(s.prod, kProdBits);
    scatter_planes_x4(s.prod, out, base, count);
  }
}

MEDSEC_TARGET_AVX2 void lane_mul_add_mul_bitsliced256(LaneView a, LaneView b, LaneView c,
                                   LaneView d, LaneSpan out, std::size_t n) {
  Bs4Scratch s;
  __m256i pa[192], pb[192];
  for (std::size_t base = 0; base < n; base += kBs4Width) {
    const std::size_t count = n - base < kBs4Width ? n - base : kBs4Width;
    gather_planes_x4(a, base, count, pa);
    gather_planes_x4(b, base, count, pb);
    bs_mul_block_x4(pa, pb, s.prod, s.karat);
    gather_planes_x4(c, base, count, pa);
    gather_planes_x4(d, base, count, pb);
    bs_mul_rec_x4(pa, pb, kBits, s.prod, s.karat);
    reduce_planes_x4(s.prod, kProdBits);
    scatter_planes_x4(s.prod, out, base, count);
  }
}

MEDSEC_TARGET_AVX2 void lane_sqr_add_mul_bitsliced256(LaneView a, LaneView b, LaneView c,
                                   LaneSpan out, std::size_t n) {
  Bs4Scratch s;
  __m256i pa[192], pb[192];
  for (std::size_t base = 0; base < n; base += kBs4Width) {
    const std::size_t count = n - base < kBs4Width ? n - base : kBs4Width;
    gather_planes_x4(a, base, count, pa);
    bs_sqr_block_x4(pa, s.prod);
    gather_planes_x4(b, base, count, pa);
    gather_planes_x4(c, base, count, pb);
    bs_mul_rec_x4(pa, pb, kBits, s.prod, s.karat);
    reduce_planes_x4(s.prod, kProdBits);
    scatter_planes_x4(s.prod, out, base, count);
  }
}

constexpr LaneVTable kLaneBitsliced256VTable{
    LaneBackend::kLaneBitsliced256, "bitsliced256", kBs4Width,
    &lane_mul_bitsliced256, &lane_sqr_bitsliced256,
    &lane_mul_add_mul_bitsliced256, &lane_sqr_add_mul_bitsliced256};

#endif  // MEDSEC_ARCH_X86_64

// --- interleaved hardware-clmul lane kernels (x86-64) -----------------------
//
// The AArch64 PMULL unit is also pipelined, but the scalar-loop fallback
// over the PMULL scalar backend already keeps it reasonably fed; the
// explicit interleave is implemented for x86-64 where PCLMULQDQ latency
// (4-7 cycles) vs throughput (1/cycle) leaves the largest gap.

#if MEDSEC_ARCH_X86_64

__attribute__((target("pclmul,sse4.1"))) inline void load_reduce_store(
    const std::uint64_t p[6], LaneSpan out, std::size_t i) {
  std::uint64_t r[3];
  reduce326(p, r);
  out.l0[i] = r[0];
  out.l1[i] = r[1];
  out.l2[i] = r[2];
}

__attribute__((target("pclmul,sse4.1"))) void lane_mul_clmulwide(
    LaneView a, LaneView b, LaneSpan out, std::size_t n) {
  std::size_t i = 0;
  // Two lanes per iteration: the twelve PCLMULQDQs of the pair are
  // mutually independent, so the multiplier pipeline stays full.
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t aA[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bA[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t aB[3] = {a.l0[i + 1], a.l1[i + 1], a.l2[i + 1]};
    const std::uint64_t bB[3] = {b.l0[i + 1], b.l1[i + 1], b.l2[i + 1]};
    std::uint64_t pA[6], pB[6];
    hwclmul::mul326_clmul(aA, bA, pA);
    hwclmul::mul326_clmul(aB, bB, pB);
    load_reduce_store(pA, out, i);
    load_reduce_store(pB, out, i + 1);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    std::uint64_t p[6];
    hwclmul::mul326_clmul(av, bv, p);
    load_reduce_store(p, out, i);
  }
}

__attribute__((target("pclmul,sse4.1"))) void lane_sqr_clmulwide(
    LaneView a, LaneSpan out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t aA[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t aB[3] = {a.l0[i + 1], a.l1[i + 1], a.l2[i + 1]};
    std::uint64_t pA[6], pB[6];
    hwclmul::sqr326_clmul(aA, pA);
    hwclmul::sqr326_clmul(aB, pB);
    load_reduce_store(pA, out, i);
    load_reduce_store(pB, out, i + 1);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    std::uint64_t p[6];
    hwclmul::sqr326_clmul(av, p);
    load_reduce_store(p, out, i);
  }
}

__attribute__((target("pclmul,sse4.1"))) void lane_mul_add_mul_clmulwide(
    LaneView a, LaneView b, LaneView c, LaneView d, LaneSpan out,
    std::size_t n) {
  // Two lanes x two products = four independent 128-bit product chains
  // in flight per iteration.
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t aA[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bA[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cA[3] = {c.l0[i], c.l1[i], c.l2[i]};
    const std::uint64_t dA[3] = {d.l0[i], d.l1[i], d.l2[i]};
    const std::uint64_t aB[3] = {a.l0[i + 1], a.l1[i + 1], a.l2[i + 1]};
    const std::uint64_t bB[3] = {b.l0[i + 1], b.l1[i + 1], b.l2[i + 1]};
    const std::uint64_t cB[3] = {c.l0[i + 1], c.l1[i + 1], c.l2[i + 1]};
    const std::uint64_t dB[3] = {d.l0[i + 1], d.l1[i + 1], d.l2[i + 1]};
    std::uint64_t pA[6], qA[6], pB[6], qB[6];
    hwclmul::mul326_clmul(aA, bA, pA);
    hwclmul::mul326_clmul(aB, bB, pB);
    hwclmul::mul326_clmul(cA, dA, qA);
    hwclmul::mul326_clmul(cB, dB, qB);
    for (std::size_t w = 0; w < 6; ++w) pA[w] ^= qA[w];
    for (std::size_t w = 0; w < 6; ++w) pB[w] ^= qB[w];
    load_reduce_store(pA, out, i);
    load_reduce_store(pB, out, i + 1);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cv[3] = {c.l0[i], c.l1[i], c.l2[i]};
    const std::uint64_t dv[3] = {d.l0[i], d.l1[i], d.l2[i]};
    std::uint64_t p[6], q[6];
    hwclmul::mul326_clmul(av, bv, p);
    hwclmul::mul326_clmul(cv, dv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] ^= q[w];
    load_reduce_store(p, out, i);
  }
}

__attribute__((target("pclmul,sse4.1"))) void lane_sqr_add_mul_clmulwide(
    LaneView a, LaneView b, LaneView c, LaneSpan out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t aA[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bA[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cA[3] = {c.l0[i], c.l1[i], c.l2[i]};
    const std::uint64_t aB[3] = {a.l0[i + 1], a.l1[i + 1], a.l2[i + 1]};
    const std::uint64_t bB[3] = {b.l0[i + 1], b.l1[i + 1], b.l2[i + 1]};
    const std::uint64_t cB[3] = {c.l0[i + 1], c.l1[i + 1], c.l2[i + 1]};
    std::uint64_t pA[6], qA[6], pB[6], qB[6];
    hwclmul::sqr326_clmul(aA, pA);
    hwclmul::sqr326_clmul(aB, pB);
    hwclmul::mul326_clmul(bA, cA, qA);
    hwclmul::mul326_clmul(bB, cB, qB);
    for (std::size_t w = 0; w < 6; ++w) pA[w] ^= qA[w];
    for (std::size_t w = 0; w < 6; ++w) pB[w] ^= qB[w];
    load_reduce_store(pA, out, i);
    load_reduce_store(pB, out, i + 1);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cv[3] = {c.l0[i], c.l1[i], c.l2[i]};
    std::uint64_t p[6], q[6];
    hwclmul::sqr326_clmul(av, p);
    hwclmul::mul326_clmul(bv, cv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] ^= q[w];
    load_reduce_store(p, out, i);
  }
}

constexpr LaneVTable kLaneClmulWideVTable{
    LaneBackend::kLaneClmulWide, "clmulwide", 8,
    &lane_mul_clmulwide, &lane_sqr_clmulwide,
    &lane_mul_add_mul_clmulwide, &lane_sqr_add_mul_clmulwide};

// --- VPCLMULQDQ mega-lane kernels (x86-64) ----------------------------------
//
// Kernel blocks in clmul_vec.h; here the loop structure. mul/sqr run two
// independent 8-lane ZMM groups per iteration (16 lanes, 24 VPCLMULQDQ
// in flight for mul); the fused forms run one group per iteration but
// already carry two independent products (24 VPCLMULQDQ). Lane counts
// that are not a multiple of the group width finish on the scalar
// 128-bit clmul kernel — the shared reduce_163.h fold keeps every path
// bit-identical. All loads of a group happen before its stores, so `out`
// aliasing an input stays safe.

MEDSEC_TARGET_VPCLMUL512 void lane_mul_vpclmul512(LaneView a, LaneView b,
                                                  LaneSpan out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const vclmul::Soa512 aA = vclmul::load_x8(a.l0, a.l1, a.l2, i);
    const vclmul::Soa512 bA = vclmul::load_x8(b.l0, b.l1, b.l2, i);
    const vclmul::Soa512 aB = vclmul::load_x8(a.l0, a.l1, a.l2, i + 8);
    const vclmul::Soa512 bB = vclmul::load_x8(b.l0, b.l1, b.l2, i + 8);
    __m512i pA[6], pB[6];
    vclmul::mul326_x8(aA, bA, pA);
    vclmul::mul326_x8(aB, bB, pB);
    vclmul::reduce_store_x8(pA, out.l0, out.l1, out.l2, i);
    vclmul::reduce_store_x8(pB, out.l0, out.l1, out.l2, i + 8);
  }
  for (; i + 8 <= n; i += 8) {
    const vclmul::Soa512 av = vclmul::load_x8(a.l0, a.l1, a.l2, i);
    const vclmul::Soa512 bv = vclmul::load_x8(b.l0, b.l1, b.l2, i);
    __m512i p[6];
    vclmul::mul326_x8(av, bv, p);
    vclmul::reduce_store_x8(p, out.l0, out.l1, out.l2, i);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    std::uint64_t p[6];
    hwclmul::mul326_clmul(av, bv, p);
    load_reduce_store(p, out, i);
  }
}

MEDSEC_TARGET_VPCLMUL512 void lane_sqr_vpclmul512(LaneView a, LaneSpan out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const vclmul::Soa512 aA = vclmul::load_x8(a.l0, a.l1, a.l2, i);
    const vclmul::Soa512 aB = vclmul::load_x8(a.l0, a.l1, a.l2, i + 8);
    __m512i pA[6], pB[6];
    vclmul::sqr326_x8(aA, pA);
    vclmul::sqr326_x8(aB, pB);
    vclmul::reduce_store_x8(pA, out.l0, out.l1, out.l2, i);
    vclmul::reduce_store_x8(pB, out.l0, out.l1, out.l2, i + 8);
  }
  for (; i + 8 <= n; i += 8) {
    const vclmul::Soa512 av = vclmul::load_x8(a.l0, a.l1, a.l2, i);
    __m512i p[6];
    vclmul::sqr326_x8(av, p);
    vclmul::reduce_store_x8(p, out.l0, out.l1, out.l2, i);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    std::uint64_t p[6];
    hwclmul::sqr326_clmul(av, p);
    load_reduce_store(p, out, i);
  }
}

MEDSEC_TARGET_VPCLMUL512 void lane_mul_add_mul_vpclmul512(
    LaneView a, LaneView b, LaneView c, LaneView d, LaneSpan out,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const vclmul::Soa512 av = vclmul::load_x8(a.l0, a.l1, a.l2, i);
    const vclmul::Soa512 bv = vclmul::load_x8(b.l0, b.l1, b.l2, i);
    const vclmul::Soa512 cv = vclmul::load_x8(c.l0, c.l1, c.l2, i);
    const vclmul::Soa512 dv = vclmul::load_x8(d.l0, d.l1, d.l2, i);
    __m512i p[6], q[6];
    vclmul::mul326_x8(av, bv, p);
    vclmul::mul326_x8(cv, dv, q);
    // Accumulate before the single fold (the lane-domain lazy reduction).
    for (std::size_t w = 0; w < 6; ++w) p[w] = _mm512_xor_si512(p[w], q[w]);
    vclmul::reduce_store_x8(p, out.l0, out.l1, out.l2, i);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cv[3] = {c.l0[i], c.l1[i], c.l2[i]};
    const std::uint64_t dv[3] = {d.l0[i], d.l1[i], d.l2[i]};
    std::uint64_t p[6], q[6];
    hwclmul::mul326_clmul(av, bv, p);
    hwclmul::mul326_clmul(cv, dv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] ^= q[w];
    load_reduce_store(p, out, i);
  }
}

MEDSEC_TARGET_VPCLMUL512 void lane_sqr_add_mul_vpclmul512(LaneView a,
                                                          LaneView b,
                                                          LaneView c,
                                                          LaneSpan out,
                                                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const vclmul::Soa512 av = vclmul::load_x8(a.l0, a.l1, a.l2, i);
    const vclmul::Soa512 bv = vclmul::load_x8(b.l0, b.l1, b.l2, i);
    const vclmul::Soa512 cv = vclmul::load_x8(c.l0, c.l1, c.l2, i);
    __m512i p[6], q[6];
    vclmul::sqr326_x8(av, p);
    vclmul::mul326_x8(bv, cv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] = _mm512_xor_si512(p[w], q[w]);
    vclmul::reduce_store_x8(p, out.l0, out.l1, out.l2, i);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cv[3] = {c.l0[i], c.l1[i], c.l2[i]};
    std::uint64_t p[6], q[6];
    hwclmul::sqr326_clmul(av, p);
    hwclmul::mul326_clmul(bv, cv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] ^= q[w];
    load_reduce_store(p, out, i);
  }
}

constexpr LaneVTable kLaneVpclmul512VTable{
    LaneBackend::kLaneVpclmul512, "vpclmul512", 16,
    &lane_mul_vpclmul512, &lane_sqr_vpclmul512,
    &lane_mul_add_mul_vpclmul512, &lane_sqr_add_mul_vpclmul512};

// The 4-wide YMM analog for VPCLMULQDQ+AVX2 hosts without AVX-512:
// identical structure at half group width (8 lanes per mul/sqr
// iteration, 4 per fused iteration).

MEDSEC_TARGET_VPCLMUL256 void lane_mul_vpclmul256(LaneView a, LaneView b,
                                                  LaneSpan out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const vclmul::Soa256 aA = vclmul::load_x4(a.l0, a.l1, a.l2, i);
    const vclmul::Soa256 bA = vclmul::load_x4(b.l0, b.l1, b.l2, i);
    const vclmul::Soa256 aB = vclmul::load_x4(a.l0, a.l1, a.l2, i + 4);
    const vclmul::Soa256 bB = vclmul::load_x4(b.l0, b.l1, b.l2, i + 4);
    __m256i pA[6], pB[6];
    vclmul::mul326_x4(aA, bA, pA);
    vclmul::mul326_x4(aB, bB, pB);
    vclmul::reduce_store_x4(pA, out.l0, out.l1, out.l2, i);
    vclmul::reduce_store_x4(pB, out.l0, out.l1, out.l2, i + 4);
  }
  for (; i + 4 <= n; i += 4) {
    const vclmul::Soa256 av = vclmul::load_x4(a.l0, a.l1, a.l2, i);
    const vclmul::Soa256 bv = vclmul::load_x4(b.l0, b.l1, b.l2, i);
    __m256i p[6];
    vclmul::mul326_x4(av, bv, p);
    vclmul::reduce_store_x4(p, out.l0, out.l1, out.l2, i);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    std::uint64_t p[6];
    hwclmul::mul326_clmul(av, bv, p);
    load_reduce_store(p, out, i);
  }
}

MEDSEC_TARGET_VPCLMUL256 void lane_sqr_vpclmul256(LaneView a, LaneSpan out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const vclmul::Soa256 aA = vclmul::load_x4(a.l0, a.l1, a.l2, i);
    const vclmul::Soa256 aB = vclmul::load_x4(a.l0, a.l1, a.l2, i + 4);
    __m256i pA[6], pB[6];
    vclmul::sqr326_x4(aA, pA);
    vclmul::sqr326_x4(aB, pB);
    vclmul::reduce_store_x4(pA, out.l0, out.l1, out.l2, i);
    vclmul::reduce_store_x4(pB, out.l0, out.l1, out.l2, i + 4);
  }
  for (; i + 4 <= n; i += 4) {
    const vclmul::Soa256 av = vclmul::load_x4(a.l0, a.l1, a.l2, i);
    __m256i p[6];
    vclmul::sqr326_x4(av, p);
    vclmul::reduce_store_x4(p, out.l0, out.l1, out.l2, i);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    std::uint64_t p[6];
    hwclmul::sqr326_clmul(av, p);
    load_reduce_store(p, out, i);
  }
}

MEDSEC_TARGET_VPCLMUL256 void lane_mul_add_mul_vpclmul256(
    LaneView a, LaneView b, LaneView c, LaneView d, LaneSpan out,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const vclmul::Soa256 av = vclmul::load_x4(a.l0, a.l1, a.l2, i);
    const vclmul::Soa256 bv = vclmul::load_x4(b.l0, b.l1, b.l2, i);
    const vclmul::Soa256 cv = vclmul::load_x4(c.l0, c.l1, c.l2, i);
    const vclmul::Soa256 dv = vclmul::load_x4(d.l0, d.l1, d.l2, i);
    __m256i p[6], q[6];
    vclmul::mul326_x4(av, bv, p);
    vclmul::mul326_x4(cv, dv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] = _mm256_xor_si256(p[w], q[w]);
    vclmul::reduce_store_x4(p, out.l0, out.l1, out.l2, i);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cv[3] = {c.l0[i], c.l1[i], c.l2[i]};
    const std::uint64_t dv[3] = {d.l0[i], d.l1[i], d.l2[i]};
    std::uint64_t p[6], q[6];
    hwclmul::mul326_clmul(av, bv, p);
    hwclmul::mul326_clmul(cv, dv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] ^= q[w];
    load_reduce_store(p, out, i);
  }
}

MEDSEC_TARGET_VPCLMUL256 void lane_sqr_add_mul_vpclmul256(LaneView a,
                                                          LaneView b,
                                                          LaneView c,
                                                          LaneSpan out,
                                                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const vclmul::Soa256 av = vclmul::load_x4(a.l0, a.l1, a.l2, i);
    const vclmul::Soa256 bv = vclmul::load_x4(b.l0, b.l1, b.l2, i);
    const vclmul::Soa256 cv = vclmul::load_x4(c.l0, c.l1, c.l2, i);
    __m256i p[6], q[6];
    vclmul::sqr326_x4(av, p);
    vclmul::mul326_x4(bv, cv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] = _mm256_xor_si256(p[w], q[w]);
    vclmul::reduce_store_x4(p, out.l0, out.l1, out.l2, i);
  }
  for (; i < n; ++i) {
    const std::uint64_t av[3] = {a.l0[i], a.l1[i], a.l2[i]};
    const std::uint64_t bv[3] = {b.l0[i], b.l1[i], b.l2[i]};
    const std::uint64_t cv[3] = {c.l0[i], c.l1[i], c.l2[i]};
    std::uint64_t p[6], q[6];
    hwclmul::sqr326_clmul(av, p);
    hwclmul::mul326_clmul(bv, cv, q);
    for (std::size_t w = 0; w < 6; ++w) p[w] ^= q[w];
    load_reduce_store(p, out, i);
  }
}

constexpr LaneVTable kLaneVpclmul256VTable{
    LaneBackend::kLaneVpclmul256, "vpclmul256", 8,
    &lane_mul_vpclmul256, &lane_sqr_vpclmul256,
    &lane_mul_add_mul_vpclmul256, &lane_sqr_add_mul_vpclmul256};

#endif  // MEDSEC_ARCH_X86_64

}  // namespace

const LaneVTable* lane_vtable(LaneBackend b) {
  switch (b) {
    case LaneBackend::kLaneScalar:
      return &kLaneScalarVTable;
    case LaneBackend::kLaneBitsliced:
      return &kLaneBitslicedVTable;
    case LaneBackend::kLaneClmulWide:
#if MEDSEC_ARCH_X86_64
      if (hwclmul::clmul_supported()) return &kLaneClmulWideVTable;
#endif
      return nullptr;
    case LaneBackend::kLaneVpclmul512:
#if MEDSEC_ARCH_X86_64
      if (cpu::has_vpclmul512()) return &kLaneVpclmul512VTable;
#endif
      return nullptr;
    case LaneBackend::kLaneVpclmul256:
#if MEDSEC_ARCH_X86_64
      if (cpu::has_vpclmul256()) return &kLaneVpclmul256VTable;
#endif
      return nullptr;
    case LaneBackend::kLaneBitsliced256:
#if MEDSEC_ARCH_X86_64
      if (cpu::has_avx2()) return &kLaneBitsliced256VTable;
#endif
      return nullptr;
  }
  return nullptr;
}

// --- Gf163xN dispatch -------------------------------------------------------

void Gf163xN::mul(const Gf163xN& a, const Gf163xN& b, Gf163xN& out) {
  active_lane_vtable()->mul(a.view(), b.view(), out.span(), out.lanes());
}

void Gf163xN::sqr(const Gf163xN& a, Gf163xN& out) {
  active_lane_vtable()->sqr(a.view(), out.span(), out.lanes());
}

void Gf163xN::mul_add_mul(const Gf163xN& a, const Gf163xN& b, const Gf163xN& c,
                          const Gf163xN& d, Gf163xN& out) {
  active_lane_vtable()->mul_add_mul(a.view(), b.view(), c.view(), d.view(),
                                    out.span(), out.lanes());
}

void Gf163xN::sqr_add_mul(const Gf163xN& a, const Gf163xN& b, const Gf163xN& c,
                          Gf163xN& out) {
  active_lane_vtable()->sqr_add_mul(a.view(), b.view(), c.view(), out.span(),
                                    out.lanes());
}

int Gf163xN::hamming_weight(std::size_t i) const {
  return std::popcount(l0_[i]) + std::popcount(l1_[i]) + std::popcount(l2_[i]);
}

void Gf163xN::hamming_weights_add(int* out) const {
  for (std::size_t i = 0; i < n_; ++i) out[i] += std::popcount(l0_[i]);
  for (std::size_t i = 0; i < n_; ++i) out[i] += std::popcount(l1_[i]);
  for (std::size_t i = 0; i < n_; ++i) out[i] += std::popcount(l2_[i]);
}

}  // namespace medsec::gf2m
