// clmul_hw.h — hardware carry-less multiply kernels (internal).
//
// The unreduced 3x3-limb product on x86-64 PCLMULQDQ and AArch64 PMULL,
// shared between the scalar backend dispatch (backend.cpp) and the
// wide-lane kernels (lanes.cpp). Both run the same 3-limb Karatsuba
// schedule (6 hardware carry-less multiplies per product).
//
// The hardware paths use GCC/Clang-only constructs (target attributes,
// __builtin_cpu_supports), so the gates require those compilers too; other
// compilers fall back to the portable/karatsuba backends.
#pragma once

#include <cstdint>

#include "gf2m/arch.h"

namespace medsec::gf2m::hwclmul {

#if MEDSEC_ARCH_X86_64

__attribute__((target("pclmul,sse4.1"))) inline void mul326_clmul(
    const std::uint64_t a[3], const std::uint64_t b[3], std::uint64_t p[6]) {
  const __m128i a01 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i b01 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i a2 = _mm_cvtsi64_si128(static_cast<long long>(a[2]));
  const __m128i b2 = _mm_cvtsi64_si128(static_cast<long long>(b[2]));

  const __m128i d0 = _mm_clmulepi64_si128(a01, b01, 0x00);
  const __m128i d1 = _mm_clmulepi64_si128(a01, b01, 0x11);
  const __m128i d2 = _mm_clmulepi64_si128(a2, b2, 0x00);

  const __m128i a1x = _mm_srli_si128(a01, 8);  // a1 in the low lane
  const __m128i b1x = _mm_srli_si128(b01, 8);
  const __m128i e01 = _mm_clmulepi64_si128(_mm_xor_si128(a01, a1x),
                                           _mm_xor_si128(b01, b1x), 0x00);
  const __m128i e02 = _mm_clmulepi64_si128(_mm_xor_si128(a01, a2),
                                           _mm_xor_si128(b01, b2), 0x00);
  const __m128i e12 = _mm_clmulepi64_si128(_mm_xor_si128(a1x, a2),
                                           _mm_xor_si128(b1x, b2), 0x00);

  const __m128i d01 = _mm_xor_si128(d0, d1);
  const __m128i c1 = _mm_xor_si128(e01, d01);
  const __m128i c2 = _mm_xor_si128(e02, _mm_xor_si128(d01, d2));
  const __m128i c3 = _mm_xor_si128(e12, _mm_xor_si128(d1, d2));

  p[0] = static_cast<std::uint64_t>(_mm_cvtsi128_si64(d0));
  p[1] = static_cast<std::uint64_t>(_mm_extract_epi64(d0, 1)) ^
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(c1));
  p[2] = static_cast<std::uint64_t>(_mm_extract_epi64(c1, 1)) ^
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(c2));
  p[3] = static_cast<std::uint64_t>(_mm_extract_epi64(c2, 1)) ^
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(c3));
  p[4] = static_cast<std::uint64_t>(_mm_extract_epi64(c3, 1)) ^
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(d2));
  p[5] = static_cast<std::uint64_t>(_mm_extract_epi64(d2, 1));
}

__attribute__((target("pclmul,sse4.1"))) inline void sqr326_clmul(
    const std::uint64_t a[3], std::uint64_t p[6]) {
  for (std::size_t i = 0; i < 3; ++i) {
    const __m128i v = _mm_cvtsi64_si128(static_cast<long long>(a[i]));
    const __m128i s = _mm_clmulepi64_si128(v, v, 0x00);
    p[2 * i] = static_cast<std::uint64_t>(_mm_cvtsi128_si64(s));
    p[2 * i + 1] = static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
  }
}

inline bool clmul_supported() { return __builtin_cpu_supports("pclmul") != 0; }

#elif MEDSEC_ARCH_AARCH64

// The same 3-limb Karatsuba schedule as the x86 path, on PMULL. The six
// 128-bit products and the XOR folding stay in NEON registers; only the
// final five cross-product recombinations touch general registers (the
// (lo, hi) lane splits straddle product boundaries, as on x86).

__attribute__((target("+crypto"))) inline uint64x2_t pmull128(
    std::uint64_t a, std::uint64_t b) {
  return vreinterpretq_u64_p128(
      vmull_p64(static_cast<poly64_t>(a), static_cast<poly64_t>(b)));
}

__attribute__((target("+crypto"))) inline void mul326_clmul(
    const std::uint64_t a[3], const std::uint64_t b[3], std::uint64_t p[6]) {
  const uint64x2_t d0 = pmull128(a[0], b[0]);
  const uint64x2_t d1 = pmull128(a[1], b[1]);
  const uint64x2_t d2 = pmull128(a[2], b[2]);
  const uint64x2_t e01 = pmull128(a[0] ^ a[1], b[0] ^ b[1]);
  const uint64x2_t e02 = pmull128(a[0] ^ a[2], b[0] ^ b[2]);
  const uint64x2_t e12 = pmull128(a[1] ^ a[2], b[1] ^ b[2]);

  const uint64x2_t d01 = veorq_u64(d0, d1);
  const uint64x2_t c1 = veorq_u64(e01, d01);
  const uint64x2_t c2 = veorq_u64(e02, veorq_u64(d01, d2));
  const uint64x2_t c3 = veorq_u64(e12, veorq_u64(d1, d2));

  p[0] = vgetq_lane_u64(d0, 0);
  p[1] = vgetq_lane_u64(d0, 1) ^ vgetq_lane_u64(c1, 0);
  p[2] = vgetq_lane_u64(c1, 1) ^ vgetq_lane_u64(c2, 0);
  p[3] = vgetq_lane_u64(c2, 1) ^ vgetq_lane_u64(c3, 0);
  p[4] = vgetq_lane_u64(c3, 1) ^ vgetq_lane_u64(d2, 0);
  p[5] = vgetq_lane_u64(d2, 1);
}

__attribute__((target("+crypto"))) inline void sqr326_clmul(
    const std::uint64_t a[3], std::uint64_t p[6]) {
  for (std::size_t i = 0; i < 3; ++i) {
    const uint64x2_t s = pmull128(a[i], a[i]);
    p[2 * i] = vgetq_lane_u64(s, 0);
    p[2 * i + 1] = vgetq_lane_u64(s, 1);
  }
}

inline bool clmul_supported() {
#if defined(__ARM_FEATURE_AES) || defined(__ARM_FEATURE_CRYPTO)
  // The crypto extensions are part of the build target: every CPU this
  // binary may legally run on has PMULL.
  return true;
#elif defined(__APPLE__)
  return true;  // every Apple aarch64 core implements PMULL
#elif defined(MEDSEC_HAVE_AUXV) && defined(HWCAP_PMULL)
  return (getauxval(AT_HWCAP) & HWCAP_PMULL) != 0;
#else
  return false;  // no detection channel: stay on the portable paths
#endif
}

#else

inline bool clmul_supported() { return false; }

#endif

}  // namespace medsec::gf2m::hwclmul
