// arch.h — host ISA detection shared by every accelerated gf2m kernel.
//
// One place defines the architecture gates (MEDSEC_ARCH_X86_64 /
// MEDSEC_ARCH_AARCH64) and the runtime CPUID predicates the backend
// registry dispatches on. The hardware paths use GCC/Clang-only
// constructs (target attributes, __builtin_cpu_supports), so the gates
// require those compilers too; other compilers fall back to the portable
// backends.
#pragma once

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define MEDSEC_ARCH_X86_64 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define MEDSEC_ARCH_AARCH64 1
#include <arm_neon.h>
#if __has_include(<sys/auxv.h>)
#include <sys/auxv.h>
#define MEDSEC_HAVE_AUXV 1
#endif
#endif

namespace medsec::gf2m::cpu {

#if MEDSEC_ARCH_X86_64

/// 128-bit PCLMULQDQ (the PR 1 scalar hardware backend and the PR 3
/// interleaved lane backend).
inline bool has_clmul128() { return __builtin_cpu_supports("pclmul") != 0; }

/// 512-bit VPCLMULQDQ: four carryless multiplies per instruction across
/// ZMM lanes. The EVEX encoding needs AVX-512F; BW/VL cover the byte and
/// 256-bit forms the kernels mix in.
inline bool has_vpclmul512() {
  return __builtin_cpu_supports("vpclmulqdq") != 0 &&
         __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
}

/// 256-bit VEX VPCLMULQDQ (two carryless multiplies per instruction):
/// present on AVX-512 parts and on VPCLMULQDQ+AVX2-only cores
/// (e.g. Gracemont) that lack the 512-bit registers.
inline bool has_vpclmul256() {
  return __builtin_cpu_supports("vpclmulqdq") != 0 &&
         __builtin_cpu_supports("avx2") != 0;
}

inline bool has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

inline bool has_avx512() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
}

/// GFNI bit-matrix path for the 64x64 bit-plane transpose
/// (vgf2p8affineqb for the 8x8 tile transposes, vpermb for the byte
/// gathers — hence the AVX512VBMI requirement).
inline bool has_gfni512() {
  return __builtin_cpu_supports("gfni") != 0 && has_avx512() &&
         __builtin_cpu_supports("avx512vbmi") != 0;
}

#else

// Non-x86 hosts: the vector paths below are x86-only; carry-less
// multiply detection stays with hwclmul::clmul_supported() (clmul_hw.h).
inline bool has_vpclmul512() { return false; }
inline bool has_vpclmul256() { return false; }
inline bool has_avx2() { return false; }
inline bool has_avx512() { return false; }
inline bool has_gfni512() { return false; }

#endif

}  // namespace medsec::gf2m::cpu
