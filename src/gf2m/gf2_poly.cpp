#include "gf2m/gf2_poly.h"

#include <algorithm>
#include <stdexcept>

namespace medsec::gf2m {

void Gf2Poly::trim() {
  while (!word_.empty() && word_.back() == 0) word_.pop_back();
}

Gf2Poly Gf2Poly::from_exponents(const std::vector<unsigned>& exps) {
  Gf2Poly p;
  for (unsigned e : exps) p.set_bit(e);
  return p;
}

Gf2Poly Gf2Poly::from_hex(const std::string& hex) {
  Gf2Poly p;
  std::size_t nibble = 0;
  for (std::size_t i = hex.size(); i-- > 0;) {
    const char c = hex[i];
    unsigned v = 0;
    if (c >= '0' && c <= '9') v = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') v = static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v = static_cast<unsigned>(c - 'A' + 10);
    else throw std::invalid_argument("Gf2Poly::from_hex: bad digit");
    for (unsigned b = 0; b < 4; ++b) {
      if ((v >> b) & 1u) p.set_bit(nibble * 4 + b);
    }
    ++nibble;
  }
  return p;
}

std::string Gf2Poly::to_hex() const {
  if (word_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  bool seen = false;
  for (std::size_t i = word_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const unsigned d = static_cast<unsigned>((word_[i] >> shift) & 0xF);
      if (d != 0) seen = true;
      if (seen) s.push_back(kDigits[d]);
    }
  }
  return seen ? s : "0";
}

int Gf2Poly::degree() const {
  if (word_.empty()) return -1;
  const std::uint64_t top = word_.back();
  int b = 63;
  while (((top >> b) & 1u) == 0) --b;
  return static_cast<int>((word_.size() - 1) * 64) + b;
}

bool Gf2Poly::bit(std::size_t i) const {
  const std::size_t w = i / 64;
  return w < word_.size() && ((word_[w] >> (i % 64)) & 1u) != 0;
}

void Gf2Poly::set_bit(std::size_t i) {
  const std::size_t w = i / 64;
  if (w >= word_.size()) word_.resize(w + 1, 0);
  word_[w] |= std::uint64_t{1} << (i % 64);
}

Gf2Poly operator+(const Gf2Poly& a, const Gf2Poly& b) {
  Gf2Poly out;
  out.word_.resize(std::max(a.word_.size(), b.word_.size()), 0);
  for (std::size_t i = 0; i < out.word_.size(); ++i)
    out.word_[i] = a.word(i) ^ b.word(i);
  out.trim();
  return out;
}

Gf2Poly Gf2Poly::shifted_left(std::size_t n) const {
  if (word_.empty()) return {};
  Gf2Poly out;
  const std::size_t ws = n / 64, bs = n % 64;
  out.word_.assign(word_.size() + ws + 1, 0);
  for (std::size_t i = 0; i < word_.size(); ++i) {
    out.word_[i + ws] ^= word_[i] << bs;
    if (bs != 0) out.word_[i + ws + 1] ^= word_[i] >> (64 - bs);
  }
  out.trim();
  return out;
}

Gf2Poly operator*(const Gf2Poly& a, const Gf2Poly& b) {
  if (a.is_zero() || b.is_zero()) return {};
  Gf2Poly out;
  out.word_.assign(a.word_.size() + b.word_.size(), 0);
  for (std::size_t i = 0; i < a.word_.size(); ++i) {
    for (int bitpos = 0; bitpos < 64; ++bitpos) {
      if ((a.word_[i] >> bitpos) & 1u) {
        // XOR in b << (64*i + bitpos), word by word.
        for (std::size_t j = 0; j < b.word_.size(); ++j) {
          out.word_[i + j] ^= b.word_[j] << bitpos;
          if (bitpos != 0)
            out.word_[i + j + 1] ^= b.word_[j] >> (64 - bitpos);
        }
      }
    }
  }
  out.trim();
  return out;
}

Gf2Poly Gf2Poly::mod(Gf2Poly a, const Gf2Poly& m) {
  if (m.is_zero()) throw std::invalid_argument("Gf2Poly::mod: zero modulus");
  const int dm = m.degree();
  int da = a.degree();
  while (da >= dm) {
    a = a + m.shifted_left(static_cast<std::size_t>(da - dm));
    da = a.degree();
  }
  return a;
}

Gf2Poly Gf2Poly::mulmod(const Gf2Poly& a, const Gf2Poly& b, const Gf2Poly& m) {
  return mod(a * b, m);
}

Gf2Poly Gf2Poly::gcd(Gf2Poly a, Gf2Poly b) {
  while (!b.is_zero()) {
    Gf2Poly r = mod(a, b);
    a = b;
    b = r;
  }
  return a;
}

Gf2Poly Gf2Poly::invmod(const Gf2Poly& a0, const Gf2Poly& m) {
  // Extended Euclid over GF(2)[x].
  Gf2Poly a = mod(a0, m);
  if (a.is_zero()) throw std::invalid_argument("Gf2Poly::invmod: zero");
  Gf2Poly u = a, v = m;
  Gf2Poly g1(1), g2;  // g1*a == u (mod m), g2*a == v (mod m)
  while (u.degree() > 0) {
    int j = u.degree() - v.degree();
    if (j < 0) {
      std::swap(u, v);
      std::swap(g1, g2);
      j = -j;
    }
    u = u + v.shifted_left(static_cast<std::size_t>(j));
    g1 = g1 + g2.shifted_left(static_cast<std::size_t>(j));
  }
  if (u.is_zero())
    throw std::invalid_argument("Gf2Poly::invmod: not invertible");
  return mod(g1, m);
}

bool Gf2Poly::is_irreducible(const Gf2Poly& f) {
  // f (degree m) is irreducible iff x^(2^m) == x (mod f) and
  // gcd(x^(2^(m/p)) - x, f) == 1 for every prime p | m.
  const int m = f.degree();
  if (m <= 0) return false;
  const Gf2Poly x = Gf2Poly::from_exponents({1});
  auto frobenius = [&f](Gf2Poly t, int times) {
    for (int i = 0; i < times; ++i) t = mulmod(t, t, f);
    return t;
  };
  // Collect prime divisors of m.
  std::vector<int> primes;
  int n = m;
  for (int p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      primes.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) primes.push_back(n);
  for (int p : primes) {
    Gf2Poly t = frobenius(x, m / p);
    const Gf2Poly g = gcd(t + x, f);
    if (g.degree() != 0) return false;
  }
  return frobenius(x, m) == mod(x, f);
}

}  // namespace medsec::gf2m
