// gf2_poly.h — runtime-width polynomials over GF(2).
//
// A simple, obviously-correct reference implementation of GF(2)[x] and
// GF(2^m) arithmetic for arbitrary m. It is the oracle against which the
// fixed-width Gf163 fast path and the bit-serial/digit-serial hardware
// models are cross-checked, and it backs generic-field experiments (e.g.
// toy curves over small fields in tests).
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace medsec::gf2m {

/// A polynomial over GF(2), stored as 64-bit words, little-endian.
class Gf2Poly {
 public:
  Gf2Poly() = default;
  explicit Gf2Poly(std::uint64_t low_word) : word_{low_word} { trim(); }

  /// Polynomial with the given exponents set, e.g. {163,7,6,3,0}.
  static Gf2Poly from_exponents(const std::vector<unsigned>& exps);
  static Gf2Poly from_hex(const std::string& hex);
  std::string to_hex() const;

  bool is_zero() const { return word_.empty(); }
  /// Degree of the polynomial; -1 for the zero polynomial.
  int degree() const;
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i);

  std::size_t word_count() const { return word_.size(); }
  std::uint64_t word(std::size_t i) const {
    return i < word_.size() ? word_[i] : 0;
  }

  friend bool operator==(const Gf2Poly& a, const Gf2Poly& b) {
    return a.word_ == b.word_;
  }

  friend Gf2Poly operator+(const Gf2Poly& a, const Gf2Poly& b);  // XOR
  friend Gf2Poly operator*(const Gf2Poly& a, const Gf2Poly& b);  // carry-less
  Gf2Poly shifted_left(std::size_t n) const;

  /// Remainder of a modulo m (polynomial long division). m != 0.
  static Gf2Poly mod(Gf2Poly a, const Gf2Poly& m);
  /// (a * b) mod m.
  static Gf2Poly mulmod(const Gf2Poly& a, const Gf2Poly& b, const Gf2Poly& m);
  /// Inverse of a modulo m via extended Euclid; m irreducible, a != 0.
  static Gf2Poly invmod(const Gf2Poly& a, const Gf2Poly& m);
  /// gcd of two polynomials.
  static Gf2Poly gcd(Gf2Poly a, Gf2Poly b);
  /// Rabin's irreducibility test (deterministic) for degree-m poly.
  static bool is_irreducible(const Gf2Poly& f);

 private:
  void trim();
  std::vector<std::uint64_t> word_;
};

}  // namespace medsec::gf2m
