// gf2_163.h — the binary extension field F_2^163.
//
// This is the field the paper's co-processor computes in: NIST's K-163 /
// B-163 field, F_2[x] / (x^163 + x^7 + x^6 + x^3 + 1). Elements are stored
// in three 64-bit limbs, little-endian limb order, with the top limb
// holding bits 128..162 (35 bits).
//
// Multiplication is carry-free (the property the paper exploits: "the
// multiplier is smaller and faster than integer multipliers"). Inversion is
// Itoh–Tsujii (9 multiplications + 162 squarings); square roots and
// half-traces support point (de)compression and quadratic solving.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "bigint/biguint.h"

namespace medsec::gf2m {

/// An element of F_2^163.
class Gf163 {
 public:
  static constexpr std::size_t kBits = 163;
  static constexpr std::size_t kLimbs = 3;
  /// Reduction polynomial: x^163 + x^7 + x^6 + x^3 + 1 (NIST).
  static constexpr std::array<unsigned, 3> kPentanomial{7, 6, 3};

  constexpr Gf163() = default;
  constexpr explicit Gf163(std::uint64_t v) : limb_{v, 0, 0} {}
  constexpr Gf163(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2)
      : limb_{l0, l1, l2} {}

  static Gf163 zero() { return Gf163{}; }
  static Gf163 one() { return Gf163{1}; }

  /// Parse big-endian hex (as in the NIST curve parameter listings).
  static Gf163 from_hex(std::string_view hex);
  std::string to_hex() const;

  /// Convert from/to a 192-bit integer bit pattern (bits above 162 must be
  /// zero on input; they are masked).
  static Gf163 from_bits(const bigint::U192& v);
  bigint::U192 to_bits() const;

  constexpr std::uint64_t limb(std::size_t i) const { return limb_[i]; }

  constexpr bool is_zero() const {
    return (limb_[0] | limb_[1] | limb_[2]) == 0;
  }
  constexpr bool bit(std::size_t i) const {
    return ((limb_[i / 64] >> (i % 64)) & 1u) != 0;
  }

  friend constexpr bool operator==(const Gf163& a, const Gf163& b) {
    return ((a.limb_[0] ^ b.limb_[0]) | (a.limb_[1] ^ b.limb_[1]) |
            (a.limb_[2] ^ b.limb_[2])) == 0;
  }

  /// Addition in characteristic 2 is XOR.
  friend constexpr Gf163 operator+(const Gf163& a, const Gf163& b) {
    return Gf163{a.limb_[0] ^ b.limb_[0], a.limb_[1] ^ b.limb_[1],
                 a.limb_[2] ^ b.limb_[2]};
  }
  Gf163& operator+=(const Gf163& b) {
    limb_[0] ^= b.limb_[0];
    limb_[1] ^= b.limb_[1];
    limb_[2] ^= b.limb_[2];
    return *this;
  }

  friend Gf163 operator*(const Gf163& a, const Gf163& b) { return mul(a, b); }

  static Gf163 mul(const Gf163& a, const Gf163& b);
  static Gf163 sqr(const Gf163& a);
  /// a·b + c·d with a single modular reduction: the two unreduced 326-bit
  /// carry-less products are XOR-accumulated before the fold (lazy
  /// reduction). Shaves one reduction per differential-add in the ladder.
  static Gf163 mul_add_mul(const Gf163& a, const Gf163& b, const Gf163& c,
                           const Gf163& d);
  /// a^2 + b·c with a single modular reduction.
  static Gf163 sqr_add_mul(const Gf163& a, const Gf163& b, const Gf163& c);
  /// Multiplicative inverse (Itoh–Tsujii). Precondition: a != 0.
  static Gf163 inv(const Gf163& a);
  /// In-place batch inversion (Montgomery's trick): n elements cost one
  /// field inversion plus ~3n multiplications instead of n inversions.
  /// Zero elements are left at zero and do not poison the batch; callers
  /// (ladder output conversion, ECIES, trace simulation) use zero as the
  /// point-at-infinity denominator marker.
  static void batch_inv(Gf163* elems, std::size_t n);
  /// a^(2^n) — n squarings. Accelerated by precomputed multi-squaring
  /// tables for the Itoh–Tsujii chain strides (5, 10, 20, 40, 81): each
  /// stride is one linear-map application instead of n serial squarings.
  static Gf163 sqr_n(Gf163 a, unsigned n);
  /// Square root (every element has exactly one in characteristic 2).
  static Gf163 sqrt(const Gf163& a);
  /// Absolute trace Tr(a) = a + a^2 + ... + a^(2^162), returns 0 or 1.
  static int trace(const Gf163& a);
  /// Half-trace H(c) = sum_{i=0..81} c^(2^(2i)); solves z^2 + z = c when
  /// Tr(c) == 0 (m odd). The other root is H(c) + 1.
  static Gf163 half_trace(const Gf163& a);

  /// Constant-time select: a if choice==0 else b.
  static constexpr Gf163 select(std::uint64_t choice, const Gf163& a,
                                const Gf163& b) {
    const std::uint64_t m = 0 - (choice & 1);
    return Gf163{(a.limb_[0] & ~m) | (b.limb_[0] & m),
                 (a.limb_[1] & ~m) | (b.limb_[1] & m),
                 (a.limb_[2] & ~m) | (b.limb_[2] & m)};
  }

  /// Constant-time conditional swap of a and b when choice==1.
  static constexpr void cswap(std::uint64_t choice, Gf163& a, Gf163& b) {
    const std::uint64_t m = 0 - (choice & 1);
    for (std::size_t i = 0; i < kLimbs; ++i) {
      const std::uint64_t t = (a.limb_[i] ^ b.limb_[i]) & m;
      a.limb_[i] ^= t;
      b.limb_[i] ^= t;
    }
  }

  /// Reduce a 326-bit polynomial product (6 limbs) modulo the field
  /// polynomial. Exposed for the digit-serial hardware model's cross-check.
  static Gf163 reduce_product(const std::array<std::uint64_t, 6>& p);

 private:
  std::array<std::uint64_t, kLimbs> limb_{};
};

}  // namespace medsec::gf2m
