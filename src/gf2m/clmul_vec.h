// clmul_vec.h — VPCLMULQDQ mega-lane carry-less multiply kernels
// (internal).
//
// VPCLMULQDQ performs four independent 64x64 carry-less multiplies per
// instruction across the 128-bit lanes of a ZMM register (two per YMM in
// the VEX form). With the batch field layer's structure-of-arrays
// operands, limb word l of 8 consecutive lanes loads straight into one
// ZMM, and the 3-limb Karatsuba schedule (6 products per lane) becomes
// 12 VPCLMULQDQ instructions per 8 lanes — 48 carry-less multiplies —
// with the products staying vector-resident through recombination and
// the shift-reduce fold (reduce_163.h). The even/odd interleave trick:
//
//   Te = VPCLMULQDQ(A, B, 0x00)   products of SoA lanes 0,2,4,6
//   To = VPCLMULQDQ(A, B, 0x11)   products of SoA lanes 1,3,5,7
//
// leaves each 128-bit register lane holding one full (lo, hi) product,
// and because unpacklo/unpackhi_epi64 interleave qwords per 128-bit
// lane, UNPACKLO(Te, To) is exactly the SoA vector of product low words
// (lanes 0..7 in order) and UNPACKHI the high words — the gather back to
// word-major costs one shuffle per product.
//
// The same schedule at half width (4 lanes, YMM) covers
// VPCLMULQDQ+AVX2-only hosts. Kernels for both widths live in lanes.cpp;
// this header provides the 8- and 4-lane unreduced product blocks shared
// with the benches and tests.
#pragma once

#include <cstdint>

#include "gf2m/arch.h"
#include "gf2m/reduce_163.h"

#if MEDSEC_ARCH_X86_64

// vpclmulqdq does not imply the legacy 128-bit feature set for the
// compiler: pclmul+sse4.1 are listed too so the scalar tail kernels
// (clmul_hw.h) can inline into the vector loops.
#define MEDSEC_TARGET_VPCLMUL512 \
  __attribute__((                \
      target("vpclmulqdq,avx512f,avx512bw,avx512vl,pclmul,sse4.1")))
#define MEDSEC_TARGET_VPCLMUL256 \
  __attribute__((target("vpclmulqdq,avx2,pclmul,sse4.1")))

namespace medsec::gf2m::vclmul {

// GCC's unmasked AVX-512 unpack/shift intrinsics expand through
// _mm512_undefined_epi32(), which GCC 12 flags as use-of-uninitialized
// (bug PR105593). Header-wide false positive, not ours.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// Limb words of 8 (ZMM) or 4 (YMM) consecutive SoA lanes.
struct Soa512 {
  __m512i l[3];
};
struct Soa256 {
  __m256i l[3];
};

MEDSEC_TARGET_VPCLMUL512 inline Soa512 load_x8(const std::uint64_t* l0,
                                               const std::uint64_t* l1,
                                               const std::uint64_t* l2,
                                               std::size_t i) {
  return Soa512{{_mm512_loadu_si512(l0 + i), _mm512_loadu_si512(l1 + i),
                 _mm512_loadu_si512(l2 + i)}};
}

MEDSEC_TARGET_VPCLMUL256 inline Soa256 load_x4(const std::uint64_t* l0,
                                               const std::uint64_t* l1,
                                               const std::uint64_t* l2,
                                               std::size_t i) {
  return Soa256{{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(l0 + i)),
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(l1 + i)),
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(l2 + i))}};
}

/// Unreduced 3x3-limb Karatsuba product of 8 SoA lanes: p[w] = word w of
/// a[i]·b[i] for the 8 lanes. 12 VPCLMULQDQ + XOR recombination + 10
/// qword unpacks, all ZMM-resident.
MEDSEC_TARGET_VPCLMUL512 inline void mul326_x8(const Soa512& a,
                                               const Soa512& b,
                                               __m512i p[6]) {
  const __m512i sa01 = _mm512_xor_si512(a.l[0], a.l[1]);
  const __m512i sb01 = _mm512_xor_si512(b.l[0], b.l[1]);
  const __m512i sa02 = _mm512_xor_si512(a.l[0], a.l[2]);
  const __m512i sb02 = _mm512_xor_si512(b.l[0], b.l[2]);
  const __m512i sa12 = _mm512_xor_si512(a.l[1], a.l[2]);
  const __m512i sb12 = _mm512_xor_si512(b.l[1], b.l[2]);

  const __m512i d0e = _mm512_clmulepi64_epi128(a.l[0], b.l[0], 0x00);
  const __m512i d0o = _mm512_clmulepi64_epi128(a.l[0], b.l[0], 0x11);
  const __m512i d1e = _mm512_clmulepi64_epi128(a.l[1], b.l[1], 0x00);
  const __m512i d1o = _mm512_clmulepi64_epi128(a.l[1], b.l[1], 0x11);
  const __m512i d2e = _mm512_clmulepi64_epi128(a.l[2], b.l[2], 0x00);
  const __m512i d2o = _mm512_clmulepi64_epi128(a.l[2], b.l[2], 0x11);
  const __m512i e01e = _mm512_clmulepi64_epi128(sa01, sb01, 0x00);
  const __m512i e01o = _mm512_clmulepi64_epi128(sa01, sb01, 0x11);
  const __m512i e02e = _mm512_clmulepi64_epi128(sa02, sb02, 0x00);
  const __m512i e02o = _mm512_clmulepi64_epi128(sa02, sb02, 0x11);
  const __m512i e12e = _mm512_clmulepi64_epi128(sa12, sb12, 0x00);
  const __m512i e12o = _mm512_clmulepi64_epi128(sa12, sb12, 0x11);

  // Same recombination as mul326_karatsuba, per product half.
  const __m512i d01e = _mm512_xor_si512(d0e, d1e);
  const __m512i d01o = _mm512_xor_si512(d0o, d1o);
  const __m512i c1e = _mm512_xor_si512(e01e, d01e);
  const __m512i c1o = _mm512_xor_si512(e01o, d01o);
  const __m512i c2e = _mm512_xor_si512(e02e, _mm512_xor_si512(d01e, d2e));
  const __m512i c2o = _mm512_xor_si512(e02o, _mm512_xor_si512(d01o, d2o));
  const __m512i c3e = _mm512_xor_si512(e12e, _mm512_xor_si512(d1e, d2e));
  const __m512i c3o = _mm512_xor_si512(e12o, _mm512_xor_si512(d1o, d2o));

  p[0] = _mm512_unpacklo_epi64(d0e, d0o);
  p[1] = _mm512_xor_si512(_mm512_unpackhi_epi64(d0e, d0o),
                          _mm512_unpacklo_epi64(c1e, c1o));
  p[2] = _mm512_xor_si512(_mm512_unpackhi_epi64(c1e, c1o),
                          _mm512_unpacklo_epi64(c2e, c2o));
  p[3] = _mm512_xor_si512(_mm512_unpackhi_epi64(c2e, c2o),
                          _mm512_unpacklo_epi64(c3e, c3o));
  p[4] = _mm512_xor_si512(_mm512_unpackhi_epi64(c3e, c3o),
                          _mm512_unpacklo_epi64(d2e, d2o));
  p[5] = _mm512_unpackhi_epi64(d2e, d2o);
}

/// Unreduced squares of 8 SoA lanes (squaring over GF(2) has no cross
/// terms: one carry-less self-multiply per limb).
MEDSEC_TARGET_VPCLMUL512 inline void sqr326_x8(const Soa512& a,
                                               __m512i p[6]) {
  for (std::size_t l = 0; l < 3; ++l) {
    const __m512i se = _mm512_clmulepi64_epi128(a.l[l], a.l[l], 0x00);
    const __m512i so = _mm512_clmulepi64_epi128(a.l[l], a.l[l], 0x11);
    p[2 * l] = _mm512_unpacklo_epi64(se, so);
    p[2 * l + 1] = _mm512_unpackhi_epi64(se, so);
  }
}

/// Fold + store 8 lanes back to SoA memory (out may alias the inputs:
/// everything for these lanes was loaded before this call).
MEDSEC_TARGET_VPCLMUL512 inline void reduce_store_x8(const __m512i p[6],
                                                     std::uint64_t* l0,
                                                     std::uint64_t* l1,
                                                     std::uint64_t* l2,
                                                     std::size_t i) {
  __m512i r[3];
  reduce326_x8(p, r);
  _mm512_storeu_si512(l0 + i, r[0]);
  _mm512_storeu_si512(l1 + i, r[1]);
  _mm512_storeu_si512(l2 + i, r[2]);
}

// --- 4-lane YMM variants (VPCLMULQDQ without AVX-512) -----------------------

MEDSEC_TARGET_VPCLMUL256 inline void mul326_x4(const Soa256& a,
                                               const Soa256& b,
                                               __m256i p[6]) {
  const __m256i sa01 = _mm256_xor_si256(a.l[0], a.l[1]);
  const __m256i sb01 = _mm256_xor_si256(b.l[0], b.l[1]);
  const __m256i sa02 = _mm256_xor_si256(a.l[0], a.l[2]);
  const __m256i sb02 = _mm256_xor_si256(b.l[0], b.l[2]);
  const __m256i sa12 = _mm256_xor_si256(a.l[1], a.l[2]);
  const __m256i sb12 = _mm256_xor_si256(b.l[1], b.l[2]);

  const __m256i d0e = _mm256_clmulepi64_epi128(a.l[0], b.l[0], 0x00);
  const __m256i d0o = _mm256_clmulepi64_epi128(a.l[0], b.l[0], 0x11);
  const __m256i d1e = _mm256_clmulepi64_epi128(a.l[1], b.l[1], 0x00);
  const __m256i d1o = _mm256_clmulepi64_epi128(a.l[1], b.l[1], 0x11);
  const __m256i d2e = _mm256_clmulepi64_epi128(a.l[2], b.l[2], 0x00);
  const __m256i d2o = _mm256_clmulepi64_epi128(a.l[2], b.l[2], 0x11);
  const __m256i e01e = _mm256_clmulepi64_epi128(sa01, sb01, 0x00);
  const __m256i e01o = _mm256_clmulepi64_epi128(sa01, sb01, 0x11);
  const __m256i e02e = _mm256_clmulepi64_epi128(sa02, sb02, 0x00);
  const __m256i e02o = _mm256_clmulepi64_epi128(sa02, sb02, 0x11);
  const __m256i e12e = _mm256_clmulepi64_epi128(sa12, sb12, 0x00);
  const __m256i e12o = _mm256_clmulepi64_epi128(sa12, sb12, 0x11);

  const __m256i d01e = _mm256_xor_si256(d0e, d1e);
  const __m256i d01o = _mm256_xor_si256(d0o, d1o);
  const __m256i c1e = _mm256_xor_si256(e01e, d01e);
  const __m256i c1o = _mm256_xor_si256(e01o, d01o);
  const __m256i c2e = _mm256_xor_si256(e02e, _mm256_xor_si256(d01e, d2e));
  const __m256i c2o = _mm256_xor_si256(e02o, _mm256_xor_si256(d01o, d2o));
  const __m256i c3e = _mm256_xor_si256(e12e, _mm256_xor_si256(d1e, d2e));
  const __m256i c3o = _mm256_xor_si256(e12o, _mm256_xor_si256(d1o, d2o));

  p[0] = _mm256_unpacklo_epi64(d0e, d0o);
  p[1] = _mm256_xor_si256(_mm256_unpackhi_epi64(d0e, d0o),
                          _mm256_unpacklo_epi64(c1e, c1o));
  p[2] = _mm256_xor_si256(_mm256_unpackhi_epi64(c1e, c1o),
                          _mm256_unpacklo_epi64(c2e, c2o));
  p[3] = _mm256_xor_si256(_mm256_unpackhi_epi64(c2e, c2o),
                          _mm256_unpacklo_epi64(c3e, c3o));
  p[4] = _mm256_xor_si256(_mm256_unpackhi_epi64(c3e, c3o),
                          _mm256_unpacklo_epi64(d2e, d2o));
  p[5] = _mm256_unpackhi_epi64(d2e, d2o);
}

MEDSEC_TARGET_VPCLMUL256 inline void sqr326_x4(const Soa256& a,
                                               __m256i p[6]) {
  for (std::size_t l = 0; l < 3; ++l) {
    const __m256i se = _mm256_clmulepi64_epi128(a.l[l], a.l[l], 0x00);
    const __m256i so = _mm256_clmulepi64_epi128(a.l[l], a.l[l], 0x11);
    p[2 * l] = _mm256_unpacklo_epi64(se, so);
    p[2 * l + 1] = _mm256_unpackhi_epi64(se, so);
  }
}

MEDSEC_TARGET_VPCLMUL256 inline void reduce_store_x4(const __m256i p[6],
                                                     std::uint64_t* l0,
                                                     std::uint64_t* l1,
                                                     std::uint64_t* l2,
                                                     std::size_t i) {
  __m256i r[3];
  reduce326_x4(p, r);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(l0 + i), r[0]);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(l1 + i), r[1]);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(l2 + i), r[2]);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace medsec::gf2m::vclmul

#endif  // MEDSEC_ARCH_X86_64
