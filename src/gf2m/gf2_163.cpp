#include "gf2m/gf2_163.h"

#include <array>
#include <bit>
#include <stdexcept>
#include <vector>

#include "gf2m/backend.h"
#include "gf2m/clmul.h"
#include "gf2m/reduce_163.h"

namespace medsec::gf2m {

namespace {
constexpr std::uint64_t kTopMask = 0x7FFFFFFFFULL;  // low 35 bits of limb 2
}  // namespace

Gf163 Gf163::from_hex(std::string_view hex) {
  return from_bits(bigint::U192::from_hex(hex));
}

std::string Gf163::to_hex() const { return to_bits().to_hex(); }

Gf163 Gf163::from_bits(const bigint::U192& v) {
  return Gf163{v.limb(0), v.limb(1), v.limb(2) & kTopMask};
}

bigint::U192 Gf163::to_bits() const {
  bigint::U192 out;
  out.set_limb(0, limb_[0]);
  out.set_limb(1, limb_[1]);
  out.set_limb(2, limb_[2]);
  return out;
}

Gf163 Gf163::reduce_product(const std::array<std::uint64_t, 6>& prod) {
  std::uint64_t out[3];
  reduce326(prod.data(), out);  // shared shift-reduce fold (reduce_163.h)
  return Gf163{out[0], out[1], out[2]};
}

Gf163 Gf163::mul(const Gf163& a, const Gf163& b) {
  std::array<std::uint64_t, 6> p;
  detail::active_vtable()->mul(a.limb_.data(), b.limb_.data(), p.data());
  return reduce_product(p);
}

Gf163 Gf163::mul_add_mul(const Gf163& a, const Gf163& b, const Gf163& c,
                         const Gf163& d) {
  const BackendVTable* vt = detail::active_vtable();
  std::array<std::uint64_t, 6> p, q;
  vt->mul(a.limb_.data(), b.limb_.data(), p.data());
  vt->mul(c.limb_.data(), d.limb_.data(), q.data());
  for (std::size_t i = 0; i < 6; ++i) p[i] ^= q[i];
  return reduce_product(p);
}

Gf163 Gf163::sqr_add_mul(const Gf163& a, const Gf163& b, const Gf163& c) {
  const BackendVTable* vt = detail::active_vtable();
  std::array<std::uint64_t, 6> p, q;
  vt->sqr(a.limb_.data(), p.data());
  vt->mul(b.limb_.data(), c.limb_.data(), q.data());
  for (std::size_t i = 0; i < 6; ++i) p[i] ^= q[i];
  return reduce_product(p);
}

Gf163 Gf163::sqr(const Gf163& a) {
  std::array<std::uint64_t, 6> p;
  detail::active_vtable()->sqr(a.limb_.data(), p.data());
  return reduce_product(p);
}

namespace {

/// Precomputed table for the linear map a -> a^(2^n) at a fixed stride n.
///
/// Frobenius iterates are GF(2)-linear, so a^(2^n) is the XOR over the set
/// bits of a of e_i^(2^n) for basis elements e_i = x^i. The table groups the
/// 163 input bits into 41 4-bit windows; applying the map is 41 table
/// lookups + XORs regardless of n — this is what turns the Itoh–Tsujii
/// chain's 162 serial squarings into a handful of sub-100ns steps.
struct MultiSqrTable {
  static constexpr std::size_t kWindows = 41;  // ceil(163 / 4)
  std::array<std::array<Gf163, 16>, kWindows> t{};

  explicit MultiSqrTable(unsigned n) {
    for (std::size_t c = 0; c < kWindows; ++c) {
      for (unsigned bit = 0; bit < 4; ++bit) {
        const std::size_t pos = 4 * c + bit;
        if (pos >= Gf163::kBits) break;
        // basis = (x^pos)^(2^n), by n plain squarings (table build only).
        std::uint64_t l[3] = {0, 0, 0};
        l[pos / 64] = std::uint64_t{1} << (pos % 64);
        Gf163 basis{l[0], l[1], l[2]};
        for (unsigned s = 0; s < n; ++s) basis = Gf163::sqr(basis);
        const unsigned hi = 1u << bit;
        for (unsigned v = 0; v < hi; ++v) t[c][v | hi] = t[c][v] + basis;
      }
    }
  }

  Gf163 apply(const Gf163& a) const {
    Gf163 acc;
    for (std::size_t c = 0; c < kWindows; ++c) {
      const std::size_t off = 4 * c;
      const unsigned nib =
          static_cast<unsigned>(a.limb(off / 64) >> (off % 64)) & 0xF;
      acc += t[c][nib];
    }
    return acc;
  }
};

/// Tables for the strides of the Itoh–Tsujii addition chain
/// (1 -> 2 -> 4 -> 5 -> 10 -> 20 -> 40 -> 80 -> 81 -> 162) plus sqrt
/// (162 = 81 + 81). Built lazily on first use (thread-safe magic statics).
const MultiSqrTable* msqr_table(unsigned n) {
  switch (n) {
    case 5: {
      static const MultiSqrTable t{5};
      return &t;
    }
    case 10: {
      static const MultiSqrTable t{10};
      return &t;
    }
    case 20: {
      static const MultiSqrTable t{20};
      return &t;
    }
    case 40: {
      static const MultiSqrTable t{40};
      return &t;
    }
    case 81: {
      static const MultiSqrTable t{81};
      return &t;
    }
    default:
      return nullptr;
  }
}

}  // namespace

Gf163 Gf163::sqr_n(Gf163 a, unsigned n) {
  static constexpr unsigned kStrides[] = {81, 40, 20, 10, 5};
  for (const unsigned stride : kStrides) {
    while (n >= stride) {
      a = msqr_table(stride)->apply(a);
      n -= stride;
    }
  }
  for (; n > 0; --n) a = sqr(a);
  return a;
}

Gf163 Gf163::inv(const Gf163& a) {
  // Itoh–Tsujii: a^{-1} = (a^(2^162 - 1))^2, with the addition chain
  // 1 -> 2 -> 4 -> 5 -> 10 -> 20 -> 40 -> 80 -> 81 -> 162 for the
  // exponents beta_k = a^(2^k - 1). The sqr_n steps with stride >= 5 hit
  // the precomputed multi-squaring tables.
  const Gf163 b1 = a;
  const Gf163 b2 = mul(sqr(b1), b1);
  const Gf163 b4 = mul(sqr_n(b2, 2), b2);
  const Gf163 b5 = mul(sqr(b4), b1);
  const Gf163 b10 = mul(sqr_n(b5, 5), b5);
  const Gf163 b20 = mul(sqr_n(b10, 10), b10);
  const Gf163 b40 = mul(sqr_n(b20, 20), b20);
  const Gf163 b80 = mul(sqr_n(b40, 40), b40);
  const Gf163 b81 = mul(sqr(b80), b1);
  const Gf163 b162 = mul(sqr_n(b81, 81), b81);
  return sqr(b162);
}

void Gf163::batch_inv(Gf163* elems, std::size_t n) {
  if (n == 0) return;
  if (n == 1) {
    if (!elems[0].is_zero()) elems[0] = inv(elems[0]);
    return;
  }
  // Forward pass: prefix[i] = product of the nonzero elements before i.
  std::vector<Gf163> prefix(n);
  Gf163 acc = one();
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i] = acc;
    if (!elems[i].is_zero()) acc = mul(acc, elems[i]);
  }
  // One inversion for the whole batch (acc == 1 if every element was zero).
  Gf163 inv_acc = inv(acc);
  // Backward pass: peel one element off the running inverse at a time.
  for (std::size_t i = n; i-- > 0;) {
    if (elems[i].is_zero()) continue;
    const Gf163 original = elems[i];
    elems[i] = mul(inv_acc, prefix[i]);
    inv_acc = mul(inv_acc, original);
  }
}

Gf163 Gf163::sqrt(const Gf163& a) {
  // sqrt(a) = a^(2^162): squaring is a field automorphism and the Frobenius
  // has order 163, so 162 squarings invert one squaring. With the
  // multi-squaring tables this is two 81-stride applications.
  return sqr_n(a, 162);
}

namespace {

Gf163 basis_element(unsigned i) {  // x^i
  return Gf163{i < 64 ? (1ull << i) : 0,
               (i >= 64 && i < 128) ? (1ull << (i - 64)) : 0,
               i >= 128 ? (1ull << (i - 128)) : 0};
}

/// The defining sum Tr(a) = sum_{i=0}^{162} a^(2^i): reference path, used
/// once to build the O(1) mask below (and self-checking: a non-binary
/// result means the field arithmetic is broken).
int trace_generic(const Gf163& a) {
  Gf163 acc = a;
  Gf163 t = a;
  for (unsigned i = 1; i < Gf163::kBits; ++i) {
    t = Gf163::sqr(t);
    acc += t;
  }
  if (acc.is_zero()) return 0;
  if (acc == Gf163::one()) return 1;
  throw std::logic_error("Gf163::trace: non-binary trace (field bug)");
}

/// The defining sum H(c) = sum_{i=0}^{(m-1)/2} c^(2^(2i)), m = 163 odd.
Gf163 half_trace_generic(const Gf163& a) {
  Gf163 acc = a;
  Gf163 t = a;
  for (unsigned i = 1; i <= (Gf163::kBits - 1) / 2; ++i) {
    t = Gf163::sqr(Gf163::sqr(t));
    acc += t;
  }
  return acc;
}

}  // namespace

int Gf163::trace(const Gf163& a) {
  // The trace is F_2-linear, so Tr(a) = parity(a & T) with mask bit
  // T_i = Tr(x^i), built once from the generic 162-squaring sum. One AND +
  // popcount instead of 162 squarings — this sits on the hot path of the
  // engine layer's point decoding and cofactor-2 subgroup gate. (For this
  // pentanomial the mask is just bits {0, 157}, but deriving it keeps the
  // code generic in the reduction polynomial.)
  static const std::array<std::uint64_t, kLimbs> kMask = [] {
    std::array<std::uint64_t, kLimbs> m{};
    for (unsigned i = 0; i < kBits; ++i)
      if (trace_generic(basis_element(i))) m[i / 64] |= 1ull << (i % 64);
    return m;
  }();
  const std::uint64_t acc = (a.limb(0) & kMask[0]) ^ (a.limb(1) & kMask[1]) ^
                            (a.limb(2) & kMask[2]);
  return static_cast<int>(std::popcount(acc) & 1);
}

Gf163 Gf163::half_trace(const Gf163& a) {
  // The half-trace is F_2-linear too: H(a) = xor over set bits a_i of
  // H(x^i), with the 163-entry basis table built once from the generic
  // double-squaring sum. ~20 XOR-accumulations for a random element
  // instead of 162 squarings; together with the batch-inverted
  // denominators this is what makes fleet-scale point decompression cheap.
  static const std::array<Gf163, kBits> kTable = [] {
    std::array<Gf163, kBits> t{};
    for (unsigned i = 0; i < kBits; ++i)
      t[i] = half_trace_generic(basis_element(i));
    return t;
  }();
  Gf163 acc;
  for (std::size_t l = 0; l < kLimbs; ++l) {
    std::uint64_t w = a.limb(l);
    while (w != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(w));
      w &= w - 1;
      acc += kTable[64 * l + b];
    }
  }
  return acc;
}

}  // namespace medsec::gf2m
