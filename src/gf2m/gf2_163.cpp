#include "gf2m/gf2_163.h"

#include <stdexcept>

#include "gf2m/clmul.h"

namespace medsec::gf2m {

namespace {
constexpr std::uint64_t kTopMask = 0x7FFFFFFFFULL;  // low 35 bits of limb 2
}  // namespace

Gf163 Gf163::from_hex(std::string_view hex) {
  return from_bits(bigint::U192::from_hex(hex));
}

std::string Gf163::to_hex() const { return to_bits().to_hex(); }

Gf163 Gf163::from_bits(const bigint::U192& v) {
  return Gf163{v.limb(0), v.limb(1), v.limb(2) & kTopMask};
}

bigint::U192 Gf163::to_bits() const {
  bigint::U192 out;
  out.set_limb(0, limb_[0]);
  out.set_limb(1, limb_[1]);
  out.set_limb(2, limb_[2]);
  return out;
}

Gf163 Gf163::reduce_product(const std::array<std::uint64_t, 6>& prod) {
  std::array<std::uint64_t, 6> p = prod;
  // Fold words 5..3 (bits >= 192). Bit 64*i + j reduces to exponent
  // e = 64*i + j - 163 = 64*(i-3) + (j + 29), contributing at offsets
  // {0, 3, 6, 7} from e (since x^163 = x^7 + x^6 + x^3 + 1).
  for (std::size_t i = 5; i >= 3; --i) {
    const std::uint64_t t = p[i];
    if (t == 0) continue;
    p[i] = 0;
    p[i - 3] ^= (t << 29) ^ (t << 32) ^ (t << 35) ^ (t << 36);
    p[i - 2] ^= (t >> 35) ^ (t >> 32) ^ (t >> 29) ^ (t >> 28);
  }
  // Fold the residual bits 163..191 living in word 2 above bit 35.
  const std::uint64_t t = p[2] >> 35;
  p[0] ^= t ^ (t << 3) ^ (t << 6) ^ (t << 7);
  p[2] &= kTopMask;
  return Gf163{p[0], p[1], p[2]};
}

Gf163 Gf163::mul(const Gf163& a, const Gf163& b) {
  std::array<std::uint64_t, 6> p{};
  for (std::size_t i = 0; i < kLimbs; ++i) {
    for (std::size_t j = 0; j < kLimbs; ++j) {
      std::uint64_t lo = 0, hi = 0;
      clmul64(a.limb_[i], b.limb_[j], lo, hi);
      p[i + j] ^= lo;
      p[i + j + 1] ^= hi;
    }
  }
  return reduce_product(p);
}

Gf163 Gf163::sqr(const Gf163& a) {
  std::array<std::uint64_t, 6> p{};
  for (std::size_t i = 0; i < kLimbs; ++i) {
    clsqr64(a.limb_[i], p[2 * i], p[2 * i + 1]);
  }
  return reduce_product(p);
}

Gf163 Gf163::sqr_n(Gf163 a, unsigned n) {
  for (unsigned i = 0; i < n; ++i) a = sqr(a);
  return a;
}

Gf163 Gf163::inv(const Gf163& a) {
  // Itoh–Tsujii: a^{-1} = (a^(2^162 - 1))^2, with the addition chain
  // 1 -> 2 -> 4 -> 5 -> 10 -> 20 -> 40 -> 80 -> 81 -> 162 for the
  // exponents beta_k = a^(2^k - 1).
  const Gf163 b1 = a;
  const Gf163 b2 = mul(sqr(b1), b1);
  const Gf163 b4 = mul(sqr_n(b2, 2), b2);
  const Gf163 b5 = mul(sqr(b4), b1);
  const Gf163 b10 = mul(sqr_n(b5, 5), b5);
  const Gf163 b20 = mul(sqr_n(b10, 10), b10);
  const Gf163 b40 = mul(sqr_n(b20, 20), b20);
  const Gf163 b80 = mul(sqr_n(b40, 40), b40);
  const Gf163 b81 = mul(sqr(b80), b1);
  const Gf163 b162 = mul(sqr_n(b81, 81), b81);
  return sqr(b162);
}

Gf163 Gf163::sqrt(const Gf163& a) {
  // sqrt(a) = a^(2^162): squaring is a field automorphism and the Frobenius
  // has order 163, so 162 squarings invert one squaring.
  return sqr_n(a, 162);
}

int Gf163::trace(const Gf163& a) {
  // Tr(a) = sum_{i=0}^{162} a^(2^i). For this field the trace is linear and
  // could be tabulated; the generic sum keeps the code obviously correct.
  Gf163 acc = a;
  Gf163 t = a;
  for (unsigned i = 1; i < kBits; ++i) {
    t = sqr(t);
    acc += t;
  }
  if (acc.is_zero()) return 0;
  if (acc == one()) return 1;
  throw std::logic_error("Gf163::trace: non-binary trace (field bug)");
}

Gf163 Gf163::half_trace(const Gf163& a) {
  // H(c) = sum_{i=0}^{(m-1)/2} c^(2^(2i)), m = 163 odd.
  Gf163 acc = a;
  Gf163 t = a;
  for (unsigned i = 1; i <= (kBits - 1) / 2; ++i) {
    t = sqr(sqr(t));
    acc += t;
  }
  return acc;
}

}  // namespace medsec::gf2m
