// transpose_bits.h — 64x64 bit-matrix transpose, scalar and vectorized.
//
// The bitsliced lane backends spend their gather/scatter phase here: a
// block of 64 lanes x 64 coefficient bits is one 64x64 bit matrix, and
// the SoA <-> bit-plane conversion is its transpose (12 of them per
// 64-lane block operand: 3 limbs x gather + scatter x 2 operands).
//
// Four implementations of the same in-place LSB-convention transpose
// (after the call, bit i of word j is the old bit j of word i):
//
//   * portable — the classic Hacker's Delight butterfly network: 6
//     rounds of masked block swaps at distances 32..1, 32 word-pairs per
//     round.
//   * AVX2 — the same butterfly with the 64 rows held in 16 YMM
//     registers. Rounds at distance >= 4 become register-pair swaps; the
//     distance-1/2 rounds run within registers via qword permutes.
//   * AVX-512 — 8 ZMM registers; rounds at distance >= 8 are
//     register-pair swaps, distances 1/2/4 run within registers
//     (permutex / shuffle_i64x2) with masked parity blends.
//   * GFNI — replaces the three within-register butterfly rounds with
//     per-register 8x8 tile transposes: VPERMB gathers each byte column
//     into a qword, VGF2P8AFFINEQB transposes the 8x8 bit tile (two
//     affine applications: A <- I·A^T via the matrix-operand slot, then a
//     per-byte bit reversal), VPERMB scatters back. The byte-gather index
//     is an involution, so one shuffle vector serves both directions.
//
// The butterfly rounds commute (each round swaps a disjoint
// (row-bit, column-bit) index pair), so the vector paths are free to run
// the cross-register rounds first; all variants are bit-identical and
// cross-checked by the transpose round-trip property tests.
#pragma once

#include <cstdint>

#include "gf2m/arch.h"

namespace medsec::gf2m::bits {

/// In-place 64x64 bit-matrix transpose, portable butterfly reference.
inline void transpose64_portable(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

#if MEDSEC_ARCH_X86_64

// GCC's unmasked AVX-512 shift/shuffle intrinsics expand through
// _mm512_undefined_epi32(), which GCC 12 flags as use-of-uninitialized
// (bug PR105593). Header-wide false positive, not ours.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace detail {

/// Column masks of the butterfly rounds: bits where the column index has
/// its distance-j bit clear.
inline constexpr std::uint64_t kButterflyMask[7] = {
    0,                       // unused (index by shift distance log)
    0x5555555555555555ULL,   // j = 1
    0x3333333333333333ULL,   // j = 2
    0x0F0F0F0F0F0F0F0FULL,   // j = 4 (log 3... see table use below)
    0x00FF00FF00FF00FFULL,   // j = 8
    0x0000FFFF0000FFFFULL,   // j = 16
    0x00000000FFFFFFFFULL};  // j = 32

}  // namespace detail

/// AVX-512 butterfly: rows 8g..8g+7 live in zmm register g.
__attribute__((target("avx512f"))) inline void transpose64_avx512(
    std::uint64_t a[64]) {
  __m512i r[8];
  for (int g = 0; g < 8; ++g) r[g] = _mm512_loadu_si512(a + 8 * g);

  // Cross-register rounds: j = 8, 16, 32 (register distance j/8).
  for (unsigned lg = 3; lg <= 5; ++lg) {
    const unsigned j = 1u << lg;
    const int d = static_cast<int>(j >> 3);
    const __m512i m = _mm512_set1_epi64(
        static_cast<long long>(detail::kButterflyMask[lg + 1]));
    for (int g = 0; g < 8; ++g) {
      if (g & d) continue;
      const __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(r[g], static_cast<int>(j)),
                           r[g + d]),
          m);
      r[g] = _mm512_xor_si512(r[g], _mm512_slli_epi64(t, static_cast<int>(j)));
      r[g + d] = _mm512_xor_si512(r[g + d], t);
    }
  }

  // Within-register rounds: j = 1, 2, 4. V = rows swapped at distance j;
  // t is valid at even positions (row index bit j clear), the swapped
  // copy of t lands on the odd positions.
  for (unsigned lg = 0; lg <= 2; ++lg) {
    const unsigned j = 1u << lg;
    const __m512i m = _mm512_set1_epi64(
        static_cast<long long>(detail::kButterflyMask[lg + 1]));
    const __mmask8 even = lg == 0 ? 0x55 : lg == 1 ? 0x33 : 0x0F;
    for (int g = 0; g < 8; ++g) {
      __m512i v;
      if (lg == 0) {
        v = _mm512_permutex_epi64(r[g], 0xB1);  // 1,0,3,2 per 256-bit half
      } else if (lg == 1) {
        v = _mm512_permutex_epi64(r[g], 0x4E);  // 2,3,0,1 per 256-bit half
      } else {
        v = _mm512_shuffle_i64x2(r[g], r[g], 0x4E);  // swap 256-bit halves
      }
      const __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(r[g], static_cast<int>(j)), v),
          m);
      __m512i tsw;
      if (lg == 0) {
        tsw = _mm512_permutex_epi64(t, 0xB1);
      } else if (lg == 1) {
        tsw = _mm512_permutex_epi64(t, 0x4E);
      } else {
        tsw = _mm512_shuffle_i64x2(t, t, 0x4E);
      }
      r[g] = _mm512_mask_xor_epi64(r[g], even, r[g],
                                   _mm512_slli_epi64(t, static_cast<int>(j)));
      r[g] = _mm512_mask_xor_epi64(r[g], static_cast<__mmask8>(~even), r[g],
                                   tsw);
    }
  }

  for (int g = 0; g < 8; ++g) _mm512_storeu_si512(a + 8 * g, r[g]);
}

/// GFNI variant: cross-register butterfly rounds as above, then one
/// VPERMB / VGF2P8AFFINEQB x2 / VPERMB sequence per register transposes
/// all eight 8x8 byte tiles at once.
__attribute__((target("avx512f,avx512bw,avx512vbmi,gfni"))) inline void
transpose64_gfni(std::uint64_t a[64]) {
  __m512i r[8];
  for (int g = 0; g < 8; ++g) r[g] = _mm512_loadu_si512(a + 8 * g);

  for (unsigned lg = 3; lg <= 5; ++lg) {
    const unsigned j = 1u << lg;
    const int d = static_cast<int>(j >> 3);
    const __m512i m = _mm512_set1_epi64(
        static_cast<long long>(detail::kButterflyMask[lg + 1]));
    for (int g = 0; g < 8; ++g) {
      if (g & d) continue;
      const __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(r[g], static_cast<int>(j)),
                           r[g + d]),
          m);
      r[g] = _mm512_xor_si512(r[g], _mm512_slli_epi64(t, static_cast<int>(j)));
      r[g + d] = _mm512_xor_si512(r[g + d], t);
    }
  }

  // Byte gather: qword c of the shuffled register collects byte c of
  // rows 0..7 — the 8x8 tile of byte-column c, one row per byte. The
  // index (byte 8c+r <- byte 8r+c) is symmetric, so the same vector
  // scatters the transposed tiles back.
  alignas(64) std::uint8_t gather_idx[64];
  for (int c = 0; c < 8; ++c)
    for (int row = 0; row < 8; ++row)
      gather_idx[8 * c + row] = static_cast<std::uint8_t>(8 * row + c);
  const __m512i gidx = _mm512_load_si512(gather_idx);
  // I = the anti-identity affine operand: gf2p8affine(x=I, A=tile) yields
  // tile^T with the bit index within each byte reversed; a second
  // application with A=I is exactly that per-byte bit reversal.
  const __m512i ident = _mm512_set1_epi64(0x8040201008040201LL);

  for (int g = 0; g < 8; ++g) {
    const __m512i tiles = _mm512_permutexvar_epi8(gidx, r[g]);
    const __m512i tr = _mm512_gf2p8affine_epi64_epi8(ident, tiles, 0);
    const __m512i fixed = _mm512_gf2p8affine_epi64_epi8(tr, ident, 0);
    r[g] = _mm512_permutexvar_epi8(gidx, fixed);
  }

  for (int g = 0; g < 8; ++g) _mm512_storeu_si512(a + 8 * g, r[g]);
}

/// AVX2 butterfly: rows 4g..4g+3 live in ymm register g.
__attribute__((target("avx2"))) inline void transpose64_avx2(
    std::uint64_t a[64]) {
  __m256i r[16];
  for (int g = 0; g < 16; ++g)
    r[g] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * g));

  // Cross-register rounds: j = 4, 8, 16, 32 (register distance j/4).
  for (unsigned lg = 2; lg <= 5; ++lg) {
    const unsigned j = 1u << lg;
    const int d = static_cast<int>(j >> 2);
    const __m256i m = _mm256_set1_epi64x(
        static_cast<long long>(detail::kButterflyMask[lg + 1]));
    for (int g = 0; g < 16; ++g) {
      if (g & d) continue;
      const __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(r[g], static_cast<int>(j)),
                           r[g + d]),
          m);
      r[g] = _mm256_xor_si256(r[g], _mm256_slli_epi64(t, static_cast<int>(j)));
      r[g + d] = _mm256_xor_si256(r[g + d], t);
    }
  }

  // Within-register rounds: j = 1, 2. The parity blend picks t<<j on the
  // even qwords and the swapped t on the odd ones (dword-granular blend
  // immediates 0xCC / 0xF0 = qwords {1,3} / {2,3}).
  for (unsigned lg = 0; lg <= 1; ++lg) {
    const unsigned j = 1u << lg;
    const __m256i m = _mm256_set1_epi64x(
        static_cast<long long>(detail::kButterflyMask[lg + 1]));
    for (int g = 0; g < 16; ++g) {
      const __m256i v = lg == 0 ? _mm256_permute4x64_epi64(r[g], 0xB1)
                                : _mm256_permute4x64_epi64(r[g], 0x4E);
      const __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(r[g], static_cast<int>(j)), v),
          m);
      const __m256i tsw = lg == 0 ? _mm256_permute4x64_epi64(t, 0xB1)
                                  : _mm256_permute4x64_epi64(t, 0x4E);
      const __m256i u =
          lg == 0
              ? _mm256_blend_epi32(_mm256_slli_epi64(t, 1), tsw, 0xCC)
              : _mm256_blend_epi32(_mm256_slli_epi64(t, 2), tsw, 0xF0);
      r[g] = _mm256_xor_si256(r[g], u);
    }
  }

  for (int g = 0; g < 16; ++g)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + 4 * g), r[g]);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // MEDSEC_ARCH_X86_64

/// The transpose implementations this build knows about, for the
/// cross-check tests and the dispatch below.
enum class TransposeImpl {
  kPortable,
  kAvx2,
  kAvx512,
  kGfni,
};

inline bool transpose64_available(TransposeImpl impl) {
  switch (impl) {
    case TransposeImpl::kPortable:
      return true;
#if MEDSEC_ARCH_X86_64
    case TransposeImpl::kAvx2:
      return cpu::has_avx2();
    case TransposeImpl::kAvx512:
      return cpu::has_avx512();
    case TransposeImpl::kGfni:
      return cpu::has_gfni512();
#else
    case TransposeImpl::kAvx2:
    case TransposeImpl::kAvx512:
    case TransposeImpl::kGfni:
      return false;
#endif
  }
  return false;
}

inline const char* transpose_impl_name(TransposeImpl impl) {
  switch (impl) {
    case TransposeImpl::kPortable:
      return "portable";
    case TransposeImpl::kAvx2:
      return "avx2";
    case TransposeImpl::kAvx512:
      return "avx512";
    case TransposeImpl::kGfni:
      return "gfni";
  }
  return "?";
}

/// Run one specific implementation (caller must check availability).
inline void transpose64_run(TransposeImpl impl, std::uint64_t a[64]) {
  switch (impl) {
    case TransposeImpl::kPortable:
      transpose64_portable(a);
      return;
#if MEDSEC_ARCH_X86_64
    case TransposeImpl::kAvx2:
      transpose64_avx2(a);
      return;
    case TransposeImpl::kAvx512:
      transpose64_avx512(a);
      return;
    case TransposeImpl::kGfni:
      transpose64_gfni(a);
      return;
#else
    case TransposeImpl::kAvx2:
    case TransposeImpl::kAvx512:
    case TransposeImpl::kGfni:
      break;
#endif
  }
  transpose64_portable(a);
}

using TransposeFn = void (*)(std::uint64_t[64]);

inline TransposeFn select_transpose64() {
#if MEDSEC_ARCH_X86_64
  if (cpu::has_gfni512()) return &transpose64_gfni;
  if (cpu::has_avx512()) return &transpose64_avx512;
  if (cpu::has_avx2()) return &transpose64_avx2;
#endif
  return &transpose64_portable;
}

inline TransposeImpl select_transpose64_impl() {
#if MEDSEC_ARCH_X86_64
  if (cpu::has_gfni512()) return TransposeImpl::kGfni;
  if (cpu::has_avx512()) return TransposeImpl::kAvx512;
  if (cpu::has_avx2()) return TransposeImpl::kAvx2;
#endif
  return TransposeImpl::kPortable;
}

/// In-place 64x64 bit transpose through the widest ISA the host offers
/// (resolved once per process).
inline void transpose64(std::uint64_t a[64]) {
  static const TransposeFn fn = select_transpose64();
  fn(a);
}

/// Multi-group form: `groups` independent 64x64 transposes on
/// consecutive 64-word blocks — the 128/256-lane bitsliced block shapes
/// (a W-lane block is W/64 independent 64x64 transposes per limb because
/// plane words are lane-major).
inline void transpose64_blocks(std::uint64_t* a, std::size_t groups) {
  for (std::size_t g = 0; g < groups; ++g) transpose64(a + 64 * g);
}

}  // namespace medsec::gf2m::bits
