// reduce_163.h — the shift-reduce fold modulo x^163 + x^7 + x^6 + x^3 + 1.
//
// Shared by the scalar field element (gf2_163.cpp) and the wide-lane
// kernels (lanes.cpp): every backend produces the same unreduced 326-bit
// carry-less product layout, and this is the one place that knows how to
// fold it back into 163 bits.
#pragma once

#include <cstdint>

namespace medsec::gf2m {

/// Reduce a 326-bit polynomial product p[0..5] modulo the field
/// polynomial into out[0..2] (bit 162 is the top bit of out[2]).
/// out may alias p[0..2].
inline void reduce326(const std::uint64_t p_in[6], std::uint64_t out[3]) {
  constexpr std::uint64_t kTopMask = 0x7FFFFFFFFULL;  // low 35 bits of limb 2
  std::uint64_t p[6] = {p_in[0], p_in[1], p_in[2], p_in[3], p_in[4], p_in[5]};
  // Fold words 5..3 (bits >= 192). Bit 64*i + j reduces to exponent
  // e = 64*i + j - 163 = 64*(i-3) + (j + 29), contributing at offsets
  // {0, 3, 6, 7} from e (since x^163 = x^7 + x^6 + x^3 + 1).
  for (std::size_t i = 5; i >= 3; --i) {
    const std::uint64_t t = p[i];
    if (t == 0) continue;
    p[i - 3] ^= (t << 29) ^ (t << 32) ^ (t << 35) ^ (t << 36);
    p[i - 2] ^= (t >> 35) ^ (t >> 32) ^ (t >> 29) ^ (t >> 28);
  }
  // Fold the residual bits 163..191 living in word 2 above bit 35.
  const std::uint64_t t = p[2] >> 35;
  out[0] = p[0] ^ t ^ (t << 3) ^ (t << 6) ^ (t << 7);
  out[1] = p[1];
  out[2] = p[2] & kTopMask;
}

}  // namespace medsec::gf2m
