// reduce_163.h — the shift-reduce fold modulo x^163 + x^7 + x^6 + x^3 + 1.
//
// THE one fold definition. Every backend — the scalar field element
// (gf2_163.cpp), the interleaved hardware-clmul lane kernels and the
// VPCLMULQDQ vector kernels (lanes.cpp), the bitsliced plane-domain
// kernels — produces the same unreduced 326-bit carry-less product
// layout, and this header is the only place that knows how to fold it
// back into 163 bits. All variants (scalar word, ZMM/YMM word-vector,
// bit-plane) derive their shift distances from kPentanomialExps below, so
// the reduction polynomial is written exactly once: drift between the
// folds would silently break the 1-lane ≡ N-lane bit-identity contract.
#pragma once

#include <cstdint>

#include "gf2m/arch.h"

namespace medsec::gf2m {

/// x^163 = x^7 + x^6 + x^3 + 1 over GF(2): the exponents of the
/// reduction pentanomial's tail. Every fold below is generated from this
/// array (and from kFieldBits) alone.
inline constexpr unsigned kPentanomialExps[4] = {0, 3, 6, 7};
inline constexpr unsigned kFieldBits = 163;
/// Valid bits in the top limb (163 - 128 = 35).
inline constexpr unsigned kTopLimbBits = kFieldBits - 128;
inline constexpr std::uint64_t kTopLimbMask = (1ULL << kTopLimbBits) - 1;
/// Folding word i (bits >= 64i) down by 163 lands at bit offset
/// 64(i-3) + kWordFoldShift + e for each tail exponent e
/// (64*3 - 163 = 29).
inline constexpr unsigned kWordFoldShift = 192 - kFieldBits;  // 29

/// Reduce a 326-bit polynomial product p[0..5] modulo the field
/// polynomial into out[0..2] (bit 162 is the top bit of out[2]).
/// out may alias p[0..2].
inline void reduce326(const std::uint64_t p_in[6], std::uint64_t out[3]) {
  std::uint64_t p[6] = {p_in[0], p_in[1], p_in[2], p_in[3], p_in[4], p_in[5]};
  // Fold words 5..3 (bits >= 192). Bit 64*i + j reduces to exponent
  // 64*(i-3) + (j + 29), contributing at offsets kPentanomialExps from
  // there; the shifts straddle the two destination words.
  // No data-dependent zero-word skip here: the fold runs the same
  // instruction sequence for every input (the ct_audit discipline — a
  // skipped word is a timing tell), and a few unconditional shift/XORs
  // of a zero word cost nothing next to the mispredict they replace.
  for (std::size_t i = 5; i >= 3; --i) {
    const std::uint64_t t = p[i];
    std::uint64_t lo = 0, hi = 0;
    for (const unsigned e : kPentanomialExps) {
      lo ^= t << (kWordFoldShift + e);
      hi ^= t >> (64 - kWordFoldShift - e);
    }
    p[i - 3] ^= lo;
    p[i - 2] ^= hi;
  }
  // Fold the residual bits 163..191 living in word 2 above bit 35.
  const std::uint64_t t = p[2] >> kTopLimbBits;
  std::uint64_t tail = 0;
  for (const unsigned e : kPentanomialExps) tail ^= t << e;
  out[0] = p[0] ^ tail;
  out[1] = p[1];
  out[2] = p[2] & kTopLimbMask;
}

/// Plane-domain form, used by the bitsliced backends: c holds 325 plane
/// words (one word = one polynomial coefficient across W lanes, W the
/// word type's bit width); fold planes 324..163 down onto
/// {e-163+0, e-163+3, e-163+6, e-163+7}. Iterating downward handles the
/// cascade (a fold target >= 163 is itself folded later in the loop).
/// Word is uint64_t for the 64-lane backend and a SIMD vector proxy for
/// the widened ones — only operator^= is required of it.
template <typename Word>
inline void reduce_planes(Word* c, std::size_t prod_bits) {
  for (std::size_t i = prod_bits - 1; i >= kFieldBits; --i) {
    for (const unsigned e : kPentanomialExps) c[i - kFieldBits + e] ^= c[i];
    c[i] = Word{};
  }
}

#if MEDSEC_ARCH_X86_64

// GCC's unmasked AVX-512 shift intrinsics expand through
// _mm512_undefined_epi32(), which GCC 12 flags as use-of-uninitialized
// (bug PR105593). Header-wide false positive, not ours.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// Plane-domain fold for the 256-lane bitsliced backend: identical
/// schedule to reduce_planes, one __m256i (= 256 lanes) per plane word.
__attribute__((target("avx2"))) inline void reduce_planes_x4(
    __m256i* c, std::size_t prod_bits) {
  for (std::size_t i = prod_bits - 1; i >= kFieldBits; --i) {
    const __m256i t = c[i];
    for (const unsigned e : kPentanomialExps)
      c[i - kFieldBits + e] = _mm256_xor_si256(c[i - kFieldBits + e], t);
    c[i] = _mm256_setzero_si256();
  }
}

// Word-vector forms of the same fold for the VPCLMULQDQ lane kernels:
// p[w] holds word w of the unreduced product for 8 (ZMM) or 4 (YMM)
// independent lanes, structure-of-arrays. Same shift schedule as the
// scalar reduce326, derived from the same constants; the data-dependent
// zero-word skip is dropped (a vector XOR of zero contributions is free
// and branch-free).

__attribute__((target("avx512f"))) inline void reduce326_x8(
    const __m512i p_in[6], __m512i out[3]) {
  __m512i p[6] = {p_in[0], p_in[1], p_in[2], p_in[3], p_in[4], p_in[5]};
  for (std::size_t i = 5; i >= 3; --i) {
    const __m512i t = p[i];
    __m512i lo = _mm512_setzero_si512(), hi = lo;
    for (const unsigned e : kPentanomialExps) {
      lo = _mm512_xor_si512(lo, _mm512_slli_epi64(t, kWordFoldShift + e));
      hi = _mm512_xor_si512(hi, _mm512_srli_epi64(t, 64 - kWordFoldShift - e));
    }
    p[i - 3] = _mm512_xor_si512(p[i - 3], lo);
    p[i - 2] = _mm512_xor_si512(p[i - 2], hi);
  }
  const __m512i t = _mm512_srli_epi64(p[2], kTopLimbBits);
  __m512i tail = _mm512_setzero_si512();
  for (const unsigned e : kPentanomialExps)
    tail = _mm512_xor_si512(tail, _mm512_slli_epi64(t, e));
  out[0] = _mm512_xor_si512(p[0], tail);
  out[1] = p[1];
  out[2] = _mm512_and_si512(p[2], _mm512_set1_epi64(kTopLimbMask));
}

__attribute__((target("avx2"))) inline void reduce326_x4(
    const __m256i p_in[6], __m256i out[3]) {
  __m256i p[6] = {p_in[0], p_in[1], p_in[2], p_in[3], p_in[4], p_in[5]};
  for (std::size_t i = 5; i >= 3; --i) {
    const __m256i t = p[i];
    __m256i lo = _mm256_setzero_si256(), hi = lo;
    for (const unsigned e : kPentanomialExps) {
      lo = _mm256_xor_si256(lo, _mm256_slli_epi64(t, kWordFoldShift + e));
      hi = _mm256_xor_si256(hi, _mm256_srli_epi64(t, 64 - kWordFoldShift - e));
    }
    p[i - 3] = _mm256_xor_si256(p[i - 3], lo);
    p[i - 2] = _mm256_xor_si256(p[i - 2], hi);
  }
  const __m256i t = _mm256_srli_epi64(p[2], kTopLimbBits);
  __m256i tail = _mm256_setzero_si256();
  for (const unsigned e : kPentanomialExps)
    tail = _mm256_xor_si256(tail, _mm256_slli_epi64(t, e));
  out[0] = _mm256_xor_si256(p[0], tail);
  out[1] = p[1];
  out[2] = _mm256_and_si256(p[2], _mm256_set1_epi64x(kTopLimbMask));
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // MEDSEC_ARCH_X86_64

}  // namespace medsec::gf2m
